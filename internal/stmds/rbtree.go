package stmds

import (
	"repro/internal/mem"
	"repro/internal/stm"
)

// RBTree is a red-black tree set over STM cells — the red-black tree
// microbenchmark of Figures 5.5, 5.6, 5.9, 6.2 and 6.7 (RSTM's RBTree).
// The implementation follows CLRS with an explicit nil sentinel node, so
// rotations and fixups can write parent links unconditionally.
//
// Node layout: [key, left, right, parent, color].
type RBTree struct {
	arena *mem.Arena
	root  *mem.Cell // Ref of the root node (nilNode when empty)
	nil_  Ref       // the shared black sentinel
}

const (
	rbKey    = 0
	rbLeft   = 1
	rbRight  = 2
	rbParent = 3
	rbColor  = 4
	rbSize   = 5
)

const (
	black uint64 = 0
	red   uint64 = 1
)

// NewRBTree creates an empty tree with room for capacity nodes.
func NewRBTree(capacity int) *RBTree {
	a := mem.NewArena(1 + (capacity+1)*rbSize)
	t := &RBTree{arena: a}
	rootIdx := a.Alloc(1)
	t.root = a.Cell(rootIdx)
	t.nil_ = alloc(a, rbSize)
	field(a, t.nil_, rbColor).Store(black)
	t.root.Store(uint64(t.nil_))
	return t
}

// Field accessors through the transaction.

func (t *RBTree) key(tx stm.Tx, r Ref) int64    { return u2k(readField(tx, t.arena, r, rbKey)) }
func (t *RBTree) left(tx stm.Tx, r Ref) Ref     { return Ref(readField(tx, t.arena, r, rbLeft)) }
func (t *RBTree) right(tx stm.Tx, r Ref) Ref    { return Ref(readField(tx, t.arena, r, rbRight)) }
func (t *RBTree) parent(tx stm.Tx, r Ref) Ref   { return Ref(readField(tx, t.arena, r, rbParent)) }
func (t *RBTree) color(tx stm.Tx, r Ref) uint64 { return readField(tx, t.arena, r, rbColor) }

func (t *RBTree) setLeft(tx stm.Tx, r, v Ref)         { writeField(tx, t.arena, r, rbLeft, uint64(v)) }
func (t *RBTree) setRight(tx stm.Tx, r, v Ref)        { writeField(tx, t.arena, r, rbRight, uint64(v)) }
func (t *RBTree) setParent(tx stm.Tx, r, v Ref)       { writeField(tx, t.arena, r, rbParent, uint64(v)) }
func (t *RBTree) setColor(tx stm.Tx, r Ref, c uint64) { writeField(tx, t.arena, r, rbColor, c) }

func (t *RBTree) getRoot(tx stm.Tx) Ref    { return Ref(tx.Read(t.root)) }
func (t *RBTree) setRoot(tx stm.Tx, r Ref) { tx.Write(t.root, uint64(r)) }

// Contains reports within tx whether key is present.
func (t *RBTree) Contains(tx stm.Tx, key int64) bool {
	x := t.getRoot(tx)
	for x != t.nil_ {
		k := t.key(tx, x)
		switch {
		case key == k:
			return true
		case key < k:
			x = t.left(tx, x)
		default:
			x = t.right(tx, x)
		}
	}
	return false
}

func (t *RBTree) leftRotate(tx stm.Tx, x Ref) {
	y := t.right(tx, x)
	yl := t.left(tx, y)
	t.setRight(tx, x, yl)
	if yl != t.nil_ {
		t.setParent(tx, yl, x)
	}
	xp := t.parent(tx, x)
	t.setParent(tx, y, xp)
	switch {
	case xp == t.nil_:
		t.setRoot(tx, y)
	case x == t.left(tx, xp):
		t.setLeft(tx, xp, y)
	default:
		t.setRight(tx, xp, y)
	}
	t.setLeft(tx, y, x)
	t.setParent(tx, x, y)
}

func (t *RBTree) rightRotate(tx stm.Tx, x Ref) {
	y := t.left(tx, x)
	yr := t.right(tx, y)
	t.setLeft(tx, x, yr)
	if yr != t.nil_ {
		t.setParent(tx, yr, x)
	}
	xp := t.parent(tx, x)
	t.setParent(tx, y, xp)
	switch {
	case xp == t.nil_:
		t.setRoot(tx, y)
	case x == t.right(tx, xp):
		t.setRight(tx, xp, y)
	default:
		t.setLeft(tx, xp, y)
	}
	t.setRight(tx, y, x)
	t.setParent(tx, x, y)
}

// Insert adds key within tx, returning false if present.
func (t *RBTree) Insert(tx stm.Tx, key int64) bool {
	y := t.nil_
	x := t.getRoot(tx)
	for x != t.nil_ {
		y = x
		k := t.key(tx, x)
		switch {
		case key == k:
			return false
		case key < k:
			x = t.left(tx, x)
		default:
			x = t.right(tx, x)
		}
	}
	z := alloc(t.arena, rbSize)
	field(t.arena, z, rbKey).Store(k2u(key))
	tx.Write(field(t.arena, z, rbLeft), uint64(t.nil_))
	tx.Write(field(t.arena, z, rbRight), uint64(t.nil_))
	tx.Write(field(t.arena, z, rbParent), uint64(y))
	tx.Write(field(t.arena, z, rbColor), red)
	switch {
	case y == t.nil_:
		t.setRoot(tx, z)
	case key < t.key(tx, y):
		t.setLeft(tx, y, z)
	default:
		t.setRight(tx, y, z)
	}
	t.insertFixup(tx, z)
	return true
}

func (t *RBTree) insertFixup(tx stm.Tx, z Ref) {
	for t.color(tx, t.parent(tx, z)) == red {
		zp := t.parent(tx, z)
		zpp := t.parent(tx, zp)
		if zp == t.left(tx, zpp) {
			y := t.right(tx, zpp)
			if t.color(tx, y) == red {
				t.setColor(tx, zp, black)
				t.setColor(tx, y, black)
				t.setColor(tx, zpp, red)
				z = zpp
				continue
			}
			if z == t.right(tx, zp) {
				z = zp
				t.leftRotate(tx, z)
				zp = t.parent(tx, z)
				zpp = t.parent(tx, zp)
			}
			t.setColor(tx, zp, black)
			t.setColor(tx, zpp, red)
			t.rightRotate(tx, zpp)
		} else {
			y := t.left(tx, zpp)
			if t.color(tx, y) == red {
				t.setColor(tx, zp, black)
				t.setColor(tx, y, black)
				t.setColor(tx, zpp, red)
				z = zpp
				continue
			}
			if z == t.left(tx, zp) {
				z = zp
				t.rightRotate(tx, z)
				zp = t.parent(tx, z)
				zpp = t.parent(tx, zp)
			}
			t.setColor(tx, zp, black)
			t.setColor(tx, zpp, red)
			t.leftRotate(tx, zpp)
		}
	}
	t.setColor(tx, t.getRoot(tx), black)
}

// transplant replaces subtree u with subtree v.
func (t *RBTree) transplant(tx stm.Tx, u, v Ref) {
	up := t.parent(tx, u)
	switch {
	case up == t.nil_:
		t.setRoot(tx, v)
	case u == t.left(tx, up):
		t.setLeft(tx, up, v)
	default:
		t.setRight(tx, up, v)
	}
	t.setParent(tx, v, up)
}

// minimum returns the leftmost node of the subtree rooted at x.
func (t *RBTree) minimum(tx stm.Tx, x Ref) Ref {
	for {
		l := t.left(tx, x)
		if l == t.nil_ {
			return x
		}
		x = l
	}
}

// Delete removes key within tx, returning false if absent.
func (t *RBTree) Delete(tx stm.Tx, key int64) bool {
	z := t.getRoot(tx)
	for z != t.nil_ {
		k := t.key(tx, z)
		if key == k {
			break
		}
		if key < k {
			z = t.left(tx, z)
		} else {
			z = t.right(tx, z)
		}
	}
	if z == t.nil_ {
		return false
	}
	y := z
	yColor := t.color(tx, y)
	var x Ref
	if t.left(tx, z) == t.nil_ {
		x = t.right(tx, z)
		t.transplant(tx, z, x)
	} else if t.right(tx, z) == t.nil_ {
		x = t.left(tx, z)
		t.transplant(tx, z, x)
	} else {
		y = t.minimum(tx, t.right(tx, z))
		yColor = t.color(tx, y)
		x = t.right(tx, y)
		if t.parent(tx, y) == z {
			t.setParent(tx, x, y)
		} else {
			t.transplant(tx, y, x)
			zr := t.right(tx, z)
			t.setRight(tx, y, zr)
			t.setParent(tx, zr, y)
		}
		t.transplant(tx, z, y)
		zl := t.left(tx, z)
		t.setLeft(tx, y, zl)
		t.setParent(tx, zl, y)
		t.setColor(tx, y, t.color(tx, z))
	}
	if yColor == black {
		t.deleteFixup(tx, x)
	}
	return true
}

func (t *RBTree) deleteFixup(tx stm.Tx, x Ref) {
	for x != t.getRoot(tx) && t.color(tx, x) == black {
		xp := t.parent(tx, x)
		if x == t.left(tx, xp) {
			w := t.right(tx, xp)
			if t.color(tx, w) == red {
				t.setColor(tx, w, black)
				t.setColor(tx, xp, red)
				t.leftRotate(tx, xp)
				xp = t.parent(tx, x)
				w = t.right(tx, xp)
			}
			if t.color(tx, t.left(tx, w)) == black && t.color(tx, t.right(tx, w)) == black {
				t.setColor(tx, w, red)
				x = xp
				continue
			}
			if t.color(tx, t.right(tx, w)) == black {
				t.setColor(tx, t.left(tx, w), black)
				t.setColor(tx, w, red)
				t.rightRotate(tx, w)
				xp = t.parent(tx, x)
				w = t.right(tx, xp)
			}
			t.setColor(tx, w, t.color(tx, xp))
			t.setColor(tx, xp, black)
			t.setColor(tx, t.right(tx, w), black)
			t.leftRotate(tx, xp)
			x = t.getRoot(tx)
		} else {
			w := t.left(tx, xp)
			if t.color(tx, w) == red {
				t.setColor(tx, w, black)
				t.setColor(tx, xp, red)
				t.rightRotate(tx, xp)
				xp = t.parent(tx, x)
				w = t.left(tx, xp)
			}
			if t.color(tx, t.right(tx, w)) == black && t.color(tx, t.left(tx, w)) == black {
				t.setColor(tx, w, red)
				x = xp
				continue
			}
			if t.color(tx, t.left(tx, w)) == black {
				t.setColor(tx, t.right(tx, w), black)
				t.setColor(tx, w, red)
				t.leftRotate(tx, w)
				xp = t.parent(tx, x)
				w = t.left(tx, xp)
			}
			t.setColor(tx, w, t.color(tx, xp))
			t.setColor(tx, xp, black)
			t.setColor(tx, t.left(tx, w), black)
			t.rightRotate(tx, xp)
			x = t.getRoot(tx)
		}
	}
	t.setColor(tx, x, black)
}

// Len counts elements non-transactionally (tests and reporting only).
func (t *RBTree) Len() int {
	var count func(Ref) int
	count = func(r Ref) int {
		if r == t.nil_ {
			return 0
		}
		l := Ref(field(t.arena, r, rbLeft).Load())
		rr := Ref(field(t.arena, r, rbRight).Load())
		return 1 + count(l) + count(rr)
	}
	return count(Ref(t.root.Load()))
}

// CheckInvariants verifies (non-transactionally, at quiescence) the
// red-black properties plus BST ordering; it returns the black height or
// panics with a description. Tests only.
func (t *RBTree) CheckInvariants() int {
	var walk func(r Ref, min, max int64) int
	walk = func(r Ref, min, max int64) int {
		if r == t.nil_ {
			return 1
		}
		k := u2k(field(t.arena, r, rbKey).Load())
		if k <= min || k >= max {
			panic("rbtree: BST order violated")
		}
		c := field(t.arena, r, rbColor).Load()
		l := Ref(field(t.arena, r, rbLeft).Load())
		rt := Ref(field(t.arena, r, rbRight).Load())
		if c == red {
			if field(t.arena, l, rbColor).Load() == red ||
				field(t.arena, rt, rbColor).Load() == red {
				panic("rbtree: red node with red child")
			}
		}
		bl := walk(l, min, k)
		br := walk(rt, k, max)
		if bl != br {
			panic("rbtree: black height mismatch")
		}
		if c == black {
			return bl + 1
		}
		return bl
	}
	root := Ref(t.root.Load())
	if root != t.nil_ && field(t.arena, root, rbColor).Load() != black {
		panic("rbtree: root not black")
	}
	const (
		minKey = int64(-1) << 62
		maxKey = int64(1) << 62
	)
	return walk(root, minKey, maxKey)
}
