// Package stmds implements data structures whose every field is a
// transactional memory cell, accessed exclusively through an stm.Tx. These
// are the "pure STM" baselines of Chapter 4 (sorted list and skip list,
// which OTB is compared against) and the microbenchmark structures of
// Chapters 5–6 (red-black tree, hash map, doubly linked list), mirroring
// the RSTM benchmark suite.
//
// Nodes live in a mem.Arena and reference each other by index (Ref), so no
// Go pointers cross the transactional boundary and ownership records hash
// stable ids. Deleted nodes are leaked (arenas are sized by the workload
// generators); this matches the epoch-free lifetime discipline of the
// original C benchmarks, where reclamation is out of scope.
package stmds

import (
	"repro/internal/mem"
	"repro/internal/stm"
)

// Ref references a node within a structure's arena. The zero Ref is nil.
type Ref uint64

// nilRef is the null node reference.
const nilRef Ref = 0

// k2u and u2k convert between int64 keys and the uint64 cell representation.
func k2u(k int64) uint64 { return uint64(k) }
func u2k(u uint64) int64 { return int64(u) }

// alloc is a shared helper: reserve fields consecutive cells and return the
// Ref of the node (arena index + 1, so that 0 stays nil).
func alloc(a *mem.Arena, fields int) Ref {
	return Ref(a.Alloc(fields) + 1)
}

// field returns the i-th cell of the node at r (r's cells are consecutive).
func field(a *mem.Arena, r Ref, i int) *mem.Cell {
	return a.Cell(uint64(r-1) + uint64(i))
}

// readField reads node r's i-th field through the transaction.
func readField(tx stm.Tx, a *mem.Arena, r Ref, i int) uint64 {
	return tx.Read(field(a, r, i))
}

// writeField writes node r's i-th field through the transaction.
func writeField(tx stm.Tx, a *mem.Arena, r Ref, i int, v uint64) {
	tx.Write(field(a, r, i), v)
}
