package stmds

import (
	"math"

	"repro/internal/mem"
	"repro/internal/stm"
)

// List is a sorted singly-linked list set over STM cells — the "pure STM
// linked-list" baseline of Chapter 4, whose traversal reads every node into
// the transaction's read set (the false-conflict behaviour of Figure 1.1).
//
// Node layout: [key, next].
type List struct {
	arena *mem.Arena
	head  Ref
}

const (
	listKey  = 0
	listNext = 1
	listSize = 2
)

// NewList creates an empty list set backed by an arena with room for
// capacity nodes (plus sentinels).
func NewList(capacity int) *List {
	a := mem.NewArena((capacity + 2) * listSize)
	l := &List{arena: a}
	tail := alloc(a, listSize)
	field(a, tail, listKey).Store(k2u(math.MaxInt64))
	field(a, tail, listNext).Store(uint64(nilRef))
	head := alloc(a, listSize)
	field(a, head, listKey).Store(k2u(math.MinInt64))
	field(a, head, listNext).Store(uint64(tail))
	l.head = head
	return l
}

// locate returns the (pred, curr) pair around key, reading transactionally.
func (l *List) locate(tx stm.Tx, key int64) (pred, curr Ref) {
	pred = l.head
	curr = Ref(readField(tx, l.arena, pred, listNext))
	for u2k(readField(tx, l.arena, curr, listKey)) < key {
		pred = curr
		curr = Ref(readField(tx, l.arena, curr, listNext))
	}
	return pred, curr
}

// Add inserts key within tx, returning false if present.
func (l *List) Add(tx stm.Tx, key int64) bool {
	pred, curr := l.locate(tx, key)
	if u2k(readField(tx, l.arena, curr, listKey)) == key {
		return false
	}
	n := alloc(l.arena, listSize)
	// Fresh node: initialize directly (invisible until linked).
	field(l.arena, n, listKey).Store(k2u(key))
	tx.Write(field(l.arena, n, listNext), uint64(curr))
	writeField(tx, l.arena, pred, listNext, uint64(n))
	return true
}

// Remove deletes key within tx, returning false if absent.
func (l *List) Remove(tx stm.Tx, key int64) bool {
	pred, curr := l.locate(tx, key)
	if u2k(readField(tx, l.arena, curr, listKey)) != key {
		return false
	}
	next := readField(tx, l.arena, curr, listNext)
	writeField(tx, l.arena, pred, listNext, next)
	return true
}

// Contains reports within tx whether key is present.
func (l *List) Contains(tx stm.Tx, key int64) bool {
	_, curr := l.locate(tx, key)
	return u2k(readField(tx, l.arena, curr, listKey)) == key
}

// Len counts elements non-transactionally (tests and reporting only).
func (l *List) Len() int {
	n := 0
	curr := Ref(field(l.arena, l.head, listNext).Load())
	for u2k(field(l.arena, curr, listKey).Load()) != math.MaxInt64 {
		n++
		curr = Ref(field(l.arena, curr, listNext).Load())
	}
	return n
}
