package stmds

import (
	"math"
	"math/rand/v2"

	"repro/internal/mem"
	"repro/internal/stm"
)

// SkipLevels is the tower height of the STM skip list.
const SkipLevels = 16

// SkipList is a skip-list set over STM cells — the "pure STM skip-list"
// baseline of Chapter 4.
//
// Node layout: [key, level, next(0) .. next(SkipLevels-1)].
type SkipList struct {
	arena *mem.Arena
	head  Ref
}

const (
	skipKey   = 0
	skipLevel = 1
	skipNext0 = 2
	skipSize  = skipNext0 + SkipLevels
)

// NewSkipList creates an empty skip-list set with room for capacity nodes.
func NewSkipList(capacity int) *SkipList {
	a := mem.NewArena((capacity + 2) * skipSize)
	s := &SkipList{arena: a}
	tail := alloc(a, skipSize)
	field(a, tail, skipKey).Store(k2u(math.MaxInt64))
	field(a, tail, skipLevel).Store(SkipLevels - 1)
	head := alloc(a, skipSize)
	field(a, head, skipKey).Store(k2u(math.MinInt64))
	field(a, head, skipLevel).Store(SkipLevels - 1)
	for l := 0; l < SkipLevels; l++ {
		field(a, head, skipNext0+l).Store(uint64(tail))
	}
	s.head = head
	return s
}

// locate fills preds/succs for key at every level.
func (s *SkipList) locate(tx stm.Tx, key int64, preds, succs *[SkipLevels]Ref) {
	pred := s.head
	for l := SkipLevels - 1; l >= 0; l-- {
		curr := Ref(readField(tx, s.arena, pred, skipNext0+l))
		for u2k(readField(tx, s.arena, curr, skipKey)) < key {
			pred = curr
			curr = Ref(readField(tx, s.arena, curr, skipNext0+l))
		}
		preds[l] = pred
		succs[l] = curr
	}
}

// Add inserts key within tx, returning false if present.
func (s *SkipList) Add(tx stm.Tx, key int64) bool {
	var preds, succs [SkipLevels]Ref
	s.locate(tx, key, &preds, &succs)
	if u2k(readField(tx, s.arena, succs[0], skipKey)) == key {
		return false
	}
	top := 0
	for top < SkipLevels-1 && rand.Uint64()&1 == 1 {
		top++
	}
	n := alloc(s.arena, skipSize)
	field(s.arena, n, skipKey).Store(k2u(key))
	field(s.arena, n, skipLevel).Store(uint64(top))
	for l := 0; l <= top; l++ {
		tx.Write(field(s.arena, n, skipNext0+l), uint64(succs[l]))
		writeField(tx, s.arena, preds[l], skipNext0+l, uint64(n))
	}
	return true
}

// Remove deletes key within tx, returning false if absent.
func (s *SkipList) Remove(tx stm.Tx, key int64) bool {
	var preds, succs [SkipLevels]Ref
	s.locate(tx, key, &preds, &succs)
	victim := succs[0]
	if u2k(readField(tx, s.arena, victim, skipKey)) != key {
		return false
	}
	top := int(readField(tx, s.arena, victim, skipLevel))
	for l := top; l >= 0; l-- {
		next := readField(tx, s.arena, victim, skipNext0+l)
		writeField(tx, s.arena, preds[l], skipNext0+l, next)
	}
	return true
}

// Contains reports within tx whether key is present.
func (s *SkipList) Contains(tx stm.Tx, key int64) bool {
	var preds, succs [SkipLevels]Ref
	s.locate(tx, key, &preds, &succs)
	return u2k(readField(tx, s.arena, succs[0], skipKey)) == key
}

// Len counts elements non-transactionally (tests and reporting only).
func (s *SkipList) Len() int {
	n := 0
	curr := Ref(field(s.arena, s.head, skipNext0).Load())
	for u2k(field(s.arena, curr, skipKey).Load()) != math.MaxInt64 {
		n++
		curr = Ref(field(s.arena, curr, skipNext0).Load())
	}
	return n
}
