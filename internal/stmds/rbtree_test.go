package stmds_test

import (
	"math/rand/v2"
	"testing"

	"repro/internal/stm"
	"repro/internal/stm/glock"
	"repro/internal/stmds"
)

// TestRBTreeStepwiseInvariants checks the red-black properties after every
// single mutation across a long random schedule, including the delete-fixup
// cases random bulk tests can miss.
func TestRBTreeStepwiseInvariants(t *testing.T) {
	alg := glock.New()
	tree := stmds.NewRBTree(30000)
	rng := rand.New(rand.NewPCG(11, 13))
	live := map[int64]bool{}
	for i := 0; i < 4000; i++ {
		k := int64(rng.IntN(300))
		if rng.IntN(2) == 0 {
			var got bool
			alg.Atomic(func(tx stm.Tx) { got = tree.Insert(tx, k) })
			if got == live[k] {
				t.Fatalf("step %d: Insert(%d) = %v with live=%v", i, k, got, live[k])
			}
			live[k] = true
		} else {
			var got bool
			alg.Atomic(func(tx stm.Tx) { got = tree.Delete(tx, k) })
			if got != live[k] {
				t.Fatalf("step %d: Delete(%d) = %v with live=%v", i, k, got, live[k])
			}
			delete(live, k)
		}
		tree.CheckInvariants()
	}
	if tree.Len() != len(live) {
		t.Fatalf("Len = %d, want %d", tree.Len(), len(live))
	}
}

// TestRBTreeTargetedDeletes exercises the classic deletion shapes: leaf,
// one child, two children, root, and full drain in both orders.
func TestRBTreeTargetedDeletes(t *testing.T) {
	alg := glock.New()
	build := func(keys ...int64) *stmds.RBTree {
		tr := stmds.NewRBTree(1000)
		for _, k := range keys {
			key := k
			alg.Atomic(func(tx stm.Tx) { tr.Insert(tx, key) })
		}
		return tr
	}
	del := func(tr *stmds.RBTree, k int64) bool {
		var got bool
		alg.Atomic(func(tx stm.Tx) { got = tr.Delete(tx, k) })
		tr.CheckInvariants()
		return got
	}

	tr := build(50, 25, 75, 10, 30, 60, 90)
	if !del(tr, 10) { // leaf
		t.Fatal("delete leaf")
	}
	if !del(tr, 25) { // one child
		t.Fatal("delete one-child node")
	}
	if !del(tr, 75) { // two children
		t.Fatal("delete two-child node")
	}
	if !del(tr, 50) { // root
		t.Fatal("delete root")
	}
	if del(tr, 50) {
		t.Fatal("double delete must fail")
	}
	if tr.Len() != 3 {
		t.Fatalf("Len = %d, want 3", tr.Len())
	}

	// Drain ascending.
	tr = build(1, 2, 3, 4, 5, 6, 7, 8, 9, 10)
	for k := int64(1); k <= 10; k++ {
		if !del(tr, k) {
			t.Fatalf("ascending drain: delete(%d)", k)
		}
	}
	if tr.Len() != 0 {
		t.Fatal("tree should be empty")
	}
	// Drain descending.
	tr = build(1, 2, 3, 4, 5, 6, 7, 8, 9, 10)
	for k := int64(10); k >= 1; k-- {
		if !del(tr, k) {
			t.Fatalf("descending drain: delete(%d)", k)
		}
	}
	if tr.Len() != 0 {
		t.Fatal("tree should be empty")
	}
}
