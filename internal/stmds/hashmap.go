package stmds

import (
	"repro/internal/mem"
	"repro/internal/stm"
)

// HashMap is a fixed-bucket chained hash map over STM cells — the hash map
// microbenchmark of Figure 5.7 (10,000 elements over 256 buckets in the
// paper's configuration). Each bucket is an unsorted chain of
// [key, value, next] nodes; a per-bucket head cell anchors the chain.
type HashMap struct {
	arena   *mem.Arena
	buckets []*mem.Cell // each holds the Ref of the first chain node
	mask    uint64
}

const (
	hmKey  = 0
	hmVal  = 1
	hmNext = 2
	hmSize = 3
)

// NewHashMap creates a map with the given bucket count (rounded up to a
// power of two) and room for capacity entries.
func NewHashMap(buckets, capacity int) *HashMap {
	nb := 1
	for nb < buckets {
		nb *= 2
	}
	a := mem.NewArena(nb + (capacity+1)*hmSize)
	m := &HashMap{arena: a, mask: uint64(nb - 1)}
	base := a.Alloc(nb)
	m.buckets = make([]*mem.Cell, nb)
	for i := range m.buckets {
		m.buckets[i] = a.Cell(base + uint64(i))
	}
	return m
}

func (m *HashMap) bucket(key int64) *mem.Cell {
	h := uint64(key) * 0x9e3779b97f4a7c15
	return m.buckets[(h>>32)&m.mask]
}

// Put inserts or updates key within tx, returning true if a new entry was
// created.
func (m *HashMap) Put(tx stm.Tx, key int64, val uint64) bool {
	b := m.bucket(key)
	for r := Ref(tx.Read(b)); r != nilRef; r = Ref(readField(tx, m.arena, r, hmNext)) {
		if u2k(readField(tx, m.arena, r, hmKey)) == key {
			writeField(tx, m.arena, r, hmVal, val)
			return false
		}
	}
	n := alloc(m.arena, hmSize)
	field(m.arena, n, hmKey).Store(k2u(key))
	tx.Write(field(m.arena, n, hmVal), val)
	tx.Write(field(m.arena, n, hmNext), tx.Read(b))
	tx.Write(b, uint64(n))
	return true
}

// Get returns the value for key within tx.
func (m *HashMap) Get(tx stm.Tx, key int64) (uint64, bool) {
	b := m.bucket(key)
	for r := Ref(tx.Read(b)); r != nilRef; r = Ref(readField(tx, m.arena, r, hmNext)) {
		if u2k(readField(tx, m.arena, r, hmKey)) == key {
			return readField(tx, m.arena, r, hmVal), true
		}
	}
	return 0, false
}

// Delete removes key within tx, returning false if absent.
func (m *HashMap) Delete(tx stm.Tx, key int64) bool {
	b := m.bucket(key)
	prev := nilRef
	for r := Ref(tx.Read(b)); r != nilRef; r = Ref(readField(tx, m.arena, r, hmNext)) {
		if u2k(readField(tx, m.arena, r, hmKey)) == key {
			next := readField(tx, m.arena, r, hmNext)
			if prev == nilRef {
				tx.Write(b, next)
			} else {
				writeField(tx, m.arena, prev, hmNext, next)
			}
			return true
		}
		prev = r
	}
	return false
}

// Len counts entries non-transactionally (tests and reporting only).
func (m *HashMap) Len() int {
	n := 0
	for _, b := range m.buckets {
		for r := Ref(b.Load()); r != nilRef; r = Ref(field(m.arena, r, hmNext).Load()) {
			n++
		}
	}
	return n
}
