// Package stm defines the software transactional memory interface shared by
// all algorithm implementations (NOrec, TL2, TML, RingSW, InvalSTM, the
// coarse global lock, RTC and RInval), together with the read/write-set
// building blocks and the critical-path profiler used by Figures 6.2–6.3.
//
// A transaction body is a func(Tx). Algorithm.Atomic runs it with that
// algorithm's concurrency control, retrying on conflict until it commits:
//
//	alg := norec.New()
//	alg.Atomic(func(tx stm.Tx) {
//		v := tx.Read(cell)
//		tx.Write(cell, v+1)
//	})
//
// Bodies must be safe to re-execute: aborted attempts unwind through a
// recovered panic and all transactional effects are discarded.
package stm

import (
	"context"
	"time"

	"repro/internal/mem"
	"repro/internal/spin"
)

// Tx is the interface a transaction body uses to access shared memory.
type Tx interface {
	// Read returns the value of c as of this transaction's snapshot.
	Read(c *mem.Cell) uint64
	// Write buffers (or, for in-place algorithms, performs) a store to c.
	Write(c *mem.Cell, v uint64)
}

// Algorithm is a software transactional memory implementation.
//
// Atomic may be called concurrently from any number of goroutines. Stop
// releases background resources (server goroutines in RTC/RInval); it is a
// no-op for pure client-side algorithms.
type Algorithm interface {
	// Name returns the algorithm's short name as used in the paper's plots.
	Name() string
	// Atomic executes fn transactionally, retrying until commit.
	Atomic(fn func(Tx))
	// Counters exposes the contention counters (CAS failures, lock spins)
	// used as the cache-miss proxy of Figure 5.6.
	Counters() *spin.Counters
	// Stop shuts down any background goroutines owned by the algorithm.
	Stop()
}

// AlgorithmCtx is implemented by algorithms whose transactions can observe
// a context: AtomicCtx gives up (with the context's error) when ctx is
// cancelled or its deadline expires instead of retrying forever. Every
// algorithm in this repository implements it; the interface is separate
// from Algorithm so external implementations are not forced to.
type AlgorithmCtx interface {
	Algorithm
	// AtomicCtx executes fn transactionally, retrying until commit or until
	// ctx is done, in which case the attempt is rolled back (all locks
	// released, no effects visible) and the context's error returned. A nil
	// ctx behaves exactly like Atomic.
	AtomicCtx(ctx context.Context, fn func(Tx)) error
}

// ReadEntry records one transactional read for value-based validation.
type ReadEntry struct {
	Cell *mem.Cell
	Val  uint64
}

// WriteEntry records one buffered transactional write.
type WriteEntry struct {
	Cell *mem.Cell
	Val  uint64
}

// writeMapThreshold is the write-set size above which an index map is built
// for O(1) read-after-write lookups.
const writeMapThreshold = 8

// WriteSet is a redo log with read-after-write lookup. Small sets use linear
// search; large sets build a map keyed by cell.
type WriteSet struct {
	entries []WriteEntry
	index   map[*mem.Cell]int
}

// Len returns the number of distinct cells written.
func (w *WriteSet) Len() int { return len(w.entries) }

// Entries returns the buffered writes in program order (latest value per
// cell). The slice is owned by the WriteSet.
func (w *WriteSet) Entries() []WriteEntry { return w.entries }

// Put buffers a write of v to c, overwriting any earlier write to c.
func (w *WriteSet) Put(c *mem.Cell, v uint64) {
	if i, ok := w.find(c); ok {
		w.entries[i].Val = v
		return
	}
	w.entries = append(w.entries, WriteEntry{Cell: c, Val: v})
	if w.index != nil {
		w.index[c] = len(w.entries) - 1
	} else if len(w.entries) > writeMapThreshold {
		w.index = make(map[*mem.Cell]int, 2*len(w.entries))
		for i, e := range w.entries {
			w.index[e.Cell] = i
		}
	}
}

// Get returns the buffered value for c, if any.
func (w *WriteSet) Get(c *mem.Cell) (uint64, bool) {
	if i, ok := w.find(c); ok {
		return w.entries[i].Val, true
	}
	return 0, false
}

func (w *WriteSet) find(c *mem.Cell) (int, bool) {
	if w.index != nil {
		i, ok := w.index[c]
		return i, ok
	}
	for i := range w.entries {
		if w.entries[i].Cell == c {
			return i, true
		}
	}
	return 0, false
}

// Publish stores every buffered value to shared memory.
func (w *WriteSet) Publish() {
	for i := range w.entries {
		w.entries[i].Cell.Store(w.entries[i].Val)
	}
}

// Reset empties the write set, retaining capacity.
func (w *WriteSet) Reset() {
	w.entries = w.entries[:0]
	w.index = nil
}

// Profile accumulates per-phase wall time on the transaction critical path.
// It backs the validation/commit/other breakdown of Figures 6.2 and 6.3.
// A nil *Profile disables instrumentation at negligible cost.
type Profile struct {
	ValidationNS int64 // time spent validating read sets
	CommitNS     int64 // time spent in commit (lock, publish, unlock)
	TotalNS      int64 // total wall time inside Atomic
	Commits      uint64
	Aborts       uint64
	mu           spin.SeqLock // guards the fields above across goroutines
}

// Now returns the current time if profiling is enabled, else the zero time.
func (p *Profile) Now() time.Time {
	if p == nil {
		return time.Time{}
	}
	return time.Now()
}

// add applies a delta under the profile's lock.
func (p *Profile) add(f func(*Profile)) {
	if p == nil {
		return
	}
	p.mu.Lock(nil)
	f(p)
	p.mu.Unlock()
}

// AddValidation charges the elapsed time since start to validation.
func (p *Profile) AddValidation(start time.Time) {
	if p == nil || start.IsZero() {
		return
	}
	d := time.Since(start).Nanoseconds()
	p.add(func(p *Profile) { p.ValidationNS += d })
}

// AddCommit charges the elapsed time since start to commit.
func (p *Profile) AddCommit(start time.Time) {
	if p == nil || start.IsZero() {
		return
	}
	d := time.Since(start).Nanoseconds()
	p.add(func(p *Profile) { p.CommitNS += d })
}

// AddTotal charges the elapsed time since start to the transaction total and
// records its outcome.
func (p *Profile) AddTotal(start time.Time, committed bool) {
	if p == nil || start.IsZero() {
		return
	}
	d := time.Since(start).Nanoseconds()
	p.add(func(p *Profile) {
		p.TotalNS += d
		if committed {
			p.Commits++
		} else {
			p.Aborts++
		}
	})
}

// ProfileSnapshot is a consistent copy of a Profile's counters.
type ProfileSnapshot struct {
	ValidationNS int64
	CommitNS     int64
	TotalNS      int64
	Commits      uint64
	Aborts       uint64
}

// OtherNS returns the time on the critical path spent outside validation
// and commit (the "other" bar of Figures 6.2–6.3), clamped at zero.
func (s ProfileSnapshot) OtherNS() int64 {
	o := s.TotalNS - s.ValidationNS - s.CommitNS
	if o < 0 {
		return 0
	}
	return o
}

// Snapshot returns a consistent copy of the accumulated profile.
func (p *Profile) Snapshot() ProfileSnapshot {
	if p == nil {
		return ProfileSnapshot{}
	}
	var out ProfileSnapshot
	p.mu.Lock(nil)
	out.ValidationNS = p.ValidationNS
	out.CommitNS = p.CommitNS
	out.TotalNS = p.TotalNS
	out.Commits = p.Commits
	out.Aborts = p.Aborts
	p.mu.Unlock()
	return out
}
