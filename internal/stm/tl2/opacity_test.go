package tl2_test

import (
	"testing"

	"repro/internal/lincheck"
	"repro/internal/stm/tl2"
)

// TestOpacityTL2 records a contended transactional workload and checks
// that some commit order of the committed transactions explains every read,
// respects real-time order, and leaves each aborted attempt with a
// consistent view (see internal/lincheck).
func TestOpacityTL2(t *testing.T) {
	s := tl2.New()
	defer s.Stop()
	cfg := lincheck.DefaultSTMConfig(102)
	if testing.Short() {
		cfg = cfg.Scaled(2)
	}
	lincheck.StressSTM(t, s, cfg)
}

// TestOpacityTL2Sharded runs the same opacity check against the
// sharded-clock variant, whose commit path always validates reads (the
// wv == rv+1 skip is unsound without a totally ordered clock).
func TestOpacityTL2Sharded(t *testing.T) {
	s := tl2.NewSharded()
	defer s.Stop()
	cfg := lincheck.DefaultSTMConfig(103)
	if testing.Short() {
		cfg = cfg.Scaled(2)
	}
	lincheck.StressSTM(t, s, cfg)
}
