// Package tl2 implements TL2 [Dice, Shalev & Shavit, DISC 2006]: a lazy STM
// with a global version clock and striped ownership records ("orecs"). TL2
// is the fine-grained-locking counterpart of NOrec in the OTB integration
// study (Chapter 4) and in the microbenchmark comparisons of Chapter 5.
//
// Protocol summary:
//   - Begin: sample the global version clock (rv).
//   - Read: sample the cell's orec before and after the read; abort if the
//     orec is locked, changed, or newer than rv.
//   - Commit (writers): lock the write-set orecs in a global order,
//     increment the clock to obtain wv, validate the read-set orecs, publish
//     the redo log, then release the orecs stamped with wv.
package tl2

import (
	"context"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/abort"
	"repro/internal/chaos/failpoint"
	"repro/internal/cm"
	"repro/internal/mem"
	"repro/internal/spin"
	"repro/internal/stm"
	"repro/internal/telemetry"
	"repro/internal/trace"
)

// fpCommitLocked fires with the write-set orecs locked, before anything is
// published; recovery must restore the pre-lock orec versions. (The clock
// may already have advanced — harmless: TL2 readers tolerate clock skips.)
var fpCommitLocked = failpoint.New("tl2.commit.locked")

// orecBits sets the ownership-record table size (2^orecBits stripes).
const orecBits = 16

// orecCount is the number of ownership records.
const orecCount = 1 << orecBits

// An orec packs a lock bit (LSB) with the version of the last committed
// write to any cell in its stripe (remaining bits).
type orec struct {
	v atomic.Uint64
	_ [spin.CacheLineSize - 8]byte
}

func orecLocked(v uint64) bool    { return v&1 == 1 }
func orecVersion(v uint64) uint64 { return v >> 1 }

// STM is a TL2 instance.
type STM struct {
	clock atomic.Uint64
	orecs []orec
	ctr   spin.Counters
	prof  *stm.Profile
	cmgr  *cm.Manager
	stats struct {
		commits atomic.Uint64
		aborts  atomic.Uint64
	}
	pool sync.Pool
}

// New creates a TL2 instance with its own clock and orec table.
func New() *STM {
	s := &STM{orecs: make([]orec, orecCount)}
	mtr := telemetry.M("TL2")
	mtr.SetPolicySource(func() string { return cm.Or(s.cmgr).Policy().Name() })
	src := trace.S("TL2")
	s.pool.New = func() any { return &tx{s: s, tel: mtr.Local(), tr: src.Local()} }
	return s
}

// SetProfile attaches a critical-path profiler (may be nil).
func (s *STM) SetProfile(p *stm.Profile) { s.prof = p }

// SetManager installs the contention manager transactions run under (nil
// means the shared cm.Default manager). It must be set before any
// transaction runs.
func (s *STM) SetManager(m *cm.Manager) { s.cmgr = m }

// Name implements stm.Algorithm.
func (s *STM) Name() string { return "TL2" }

// Counters implements stm.Algorithm.
func (s *STM) Counters() *spin.Counters { return &s.ctr }

// Stop implements stm.Algorithm; TL2 has no background goroutines.
func (s *STM) Stop() {}

// Commits and Aborts report lifetime transaction outcomes.
func (s *STM) Commits() uint64 { return s.stats.commits.Load() }

// Aborts reports the number of aborted attempts.
func (s *STM) Aborts() uint64 { return s.stats.aborts.Load() }

// orecIdx maps a cell to its ownership-record index by hashing the cell id.
func orecIdx(c *mem.Cell) int {
	h := c.ID() * 0x9e3779b97f4a7c15
	return int(h >> (64 - orecBits))
}

// orecFor maps a cell to its ownership record.
func (s *STM) orecFor(c *mem.Cell) *orec {
	return &s.orecs[orecIdx(c)]
}

// orecTraceKey names an orec stripe in flight-recorder attributions. The
// high tag bit keeps stripe keys disjoint from cell ids in conflict tables.
func orecTraceKey(idx int) uint64 { return uint64(idx) | 1<<62 }

// tx is a TL2 transaction descriptor.
type tx struct {
	s      *STM
	rv     uint64
	reads  []*orec
	writes stm.WriteSet
	locked []lockedOrec
	tel    *telemetry.Local
	tr     *trace.Local
}

type lockedOrec struct {
	o   *orec
	idx int    // table index, the global locking order
	old uint64 // pre-lock value, restored on abort
}

// Atomic implements stm.Algorithm.
func (s *STM) Atomic(fn func(stm.Tx)) { s.AtomicCtx(nil, fn) }

// AtomicCtx implements stm.AlgorithmCtx: Atomic observing ctx. The
// descriptor returns to its pool even when fn (or an armed failpoint)
// panics — the rollback path has already restored the locked orecs by then.
func (s *STM) AtomicCtx(ctx context.Context, fn func(stm.Tx)) error {
	t := s.pool.Get().(*tx)
	defer func() {
		t.reset()
		s.pool.Put(t)
	}()
	total := s.prof.Now()
	start := t.tel.Start()
	t.tr.TxStart()
	defer t.tr.TxEnd()
	escalated, err := abort.RunPolicyCtx(ctx, nil, cm.Or(s.cmgr),
		t.begin,
		func() {
			fn(t)
			cs := t.tel.Start()
			t.tr.CommitBegin()
			t.commit()
			t.tr.CommitEnd()
			t.tel.CommitPhase(cs)
		},
		func(r abort.Reason) {
			t.releaseLocked(true)
			s.stats.aborts.Add(1)
			t.tel.Abort(r)
			t.tr.Abort(r)
		},
	)
	if escalated {
		t.tel.Escalated()
		t.tr.Escalated()
	}
	if err != nil {
		return err
	}
	s.stats.commits.Add(1)
	t.tel.Commit(start)
	s.prof.AddTotal(total, true)
	return nil
}

func (t *tx) begin() {
	t.tr.AttemptStart()
	t.reset()
	t.rv = t.s.clock.Load()
}

func (t *tx) reset() {
	t.reads = t.reads[:0]
	t.writes.Reset()
	t.locked = t.locked[:0]
}

// Read implements stm.Tx with TL2's pre/post orec sampling.
func (t *tx) Read(c *mem.Cell) uint64 {
	if v, ok := t.writes.Get(c); ok {
		return v
	}
	o := t.s.orecFor(c)
	v1 := o.v.Load()
	val := c.Load()
	v2 := o.v.Load()
	if v1 != v2 || orecLocked(v1) || orecVersion(v1) > t.rv {
		t.tr.ValidateFail(c.ID())
		abort.Retry(abort.Conflict)
	}
	t.reads = append(t.reads, o)
	return val
}

// Write implements stm.Tx; writes are buffered until commit.
func (t *tx) Write(c *mem.Cell, v uint64) {
	t.writes.Put(c, v)
}

// commit runs TL2's lock / clock / validate / publish / release sequence.
func (t *tx) commit() {
	if t.writes.Len() == 0 {
		return
	}
	start := t.s.prof.Now()
	t.lockWriteSet()
	fpCommitLocked.Hit()
	wv := t.s.clock.Add(1)
	t.s.prof.AddCommit(start)
	if wv != t.rv+1 {
		t.validateReads()
	}
	start = t.s.prof.Now()
	t.writes.Publish()
	for _, l := range t.locked {
		l.o.v.Store(wv << 1)
	}
	t.locked = t.locked[:0]
	t.s.prof.AddCommit(start)
}

// lockWriteSet acquires the distinct orecs covering the write set in
// ascending table order (deadlock avoidance); any busy orec aborts the
// transaction, releasing what was acquired.
func (t *tx) lockWriteSet() {
	var seen []lockedOrec
	for _, e := range t.writes.Entries() {
		idx := orecIdx(e.Cell)
		dup := false
		for _, l := range seen {
			if l.idx == idx {
				dup = true
				break
			}
		}
		if !dup {
			seen = append(seen, lockedOrec{o: &t.s.orecs[idx], idx: idx})
		}
	}
	sort.Slice(seen, func(i, j int) bool { return seen[i].idx < seen[j].idx })
	t.locked = t.locked[:0]
	for _, l := range seen {
		v := l.o.v.Load()
		if orecLocked(v) || orecVersion(v) > t.rv || !l.o.v.CompareAndSwap(v, v|1) {
			t.s.ctr.IncCAS()
			t.tr.LockBusy(orecTraceKey(l.idx))
			abort.Retry(abort.LockBusy)
		}
		t.tr.Lock(orecTraceKey(l.idx))
		t.locked = append(t.locked, lockedOrec{o: l.o, idx: l.idx, old: v})
	}
}

// validateReads checks every read-set orec: it must be unlocked (or locked
// by this transaction) with a version no newer than rv.
func (t *tx) validateReads() {
	start := t.s.prof.Now()
	defer t.s.prof.AddValidation(start)
	for _, o := range t.reads {
		v := o.v.Load()
		if orecLocked(v) {
			old, mine := t.ownedOld(o)
			if !mine || orecVersion(old) > t.rv {
				abort.Retry(abort.Conflict)
			}
			continue
		}
		if orecVersion(v) > t.rv {
			abort.Retry(abort.Conflict)
		}
	}
	t.tr.Validated()
}

// ownedOld reports whether this transaction holds o, returning the pre-lock
// value if so.
func (t *tx) ownedOld(o *orec) (uint64, bool) {
	for _, l := range t.locked {
		if l.o == o {
			return l.old, true
		}
	}
	return 0, false
}

// releaseLocked unlocks any orecs held by an aborting transaction. With
// restore=true the pre-lock versions are put back (no writes were
// published).
func (t *tx) releaseLocked(restore bool) {
	for _, l := range t.locked {
		if restore {
			l.o.v.Store(l.old)
		} else {
			l.o.v.Store(l.old &^ 1)
		}
	}
	t.locked = t.locked[:0]
}

var _ stm.Algorithm = (*STM)(nil)
