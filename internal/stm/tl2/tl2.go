// Package tl2 implements TL2 [Dice, Shalev & Shavit, DISC 2006]: a lazy STM
// with a global version clock and striped ownership records ("orecs"). TL2
// is the fine-grained-locking counterpart of NOrec in the OTB integration
// study (Chapter 4) and in the microbenchmark comparisons of Chapter 5.
//
// Protocol summary:
//   - Begin: sample the global version clock (rv).
//   - Read: sample the cell's orec before and after the read; abort if the
//     orec is locked, changed, or newer than rv.
//   - Commit (writers): lock the write-set orecs in a global order,
//     increment the clock to obtain wv, validate the read-set orecs, publish
//     the redo log, then release the orecs stamped with wv.
//
// Two clock flavors are provided. New uses the classic single fetch-add
// clock, which admits the "wv == rv+1 ⇒ skip read validation" fast path.
// NewSharded (algorithm name "TL2S") spreads the clock across
// cache-line-padded shards so committers do not serialize on one line; a
// sharded clock cannot order two concurrent ticks, so the skip is unsound
// and TL2S always validates its read set (see DESIGN.md).
package tl2

import (
	"context"
	"sync"
	"sync/atomic"

	"repro/internal/abort"
	"repro/internal/chaos/failpoint"
	"repro/internal/cm"
	"repro/internal/mem"
	"repro/internal/spin"
	"repro/internal/stm"
	"repro/internal/telemetry"
	"repro/internal/trace"
)

// fpCommitLocked fires with the write-set orecs locked, before anything is
// published; recovery must restore the pre-lock orec versions. (The clock
// may already have advanced — harmless: TL2 readers tolerate clock skips.)
var fpCommitLocked = failpoint.New("tl2.commit.locked")

// orecBits sets the ownership-record table size (2^orecBits stripes).
const orecBits = 16

// orecCount is the number of ownership records.
const orecCount = 1 << orecBits

// An orec packs a lock bit (LSB) with the version of the last committed
// write to any cell in its stripe (remaining bits).
type orec struct {
	v atomic.Uint64
	_ [spin.CacheLineSize - 8]byte
}

func orecLocked(v uint64) bool    { return v&1 == 1 }
func orecVersion(v uint64) uint64 { return v >> 1 }

// STM is a TL2 instance.
type STM struct {
	name    string
	clock   atomic.Uint64
	_       [spin.CacheLineSize - 8]byte // keep clock off the orecs' lines
	sharded *spin.ShardedClock           // nil: use the global clock
	orecs   []orec
	ctr     spin.Counters
	prof    *stm.Profile
	cmgr    *cm.Manager
	stats   struct {
		commits spin.ShardedU64
		aborts  spin.ShardedU64
	}
	pool sync.Pool
}

// New creates a TL2 instance with its own global clock and orec table.
func New() *STM { return newSTM("TL2", nil) }

// NewSharded creates a TL2 instance whose version clock is sharded across
// cache lines (algorithm name "TL2S"). Sharded transactions always validate
// their read sets at commit: the wv == rv+1 skip requires the clock to
// totally order commits, which a sharded clock does not.
func NewSharded() *STM { return newSTM("TL2S", new(spin.ShardedClock)) }

func newSTM(name string, sc *spin.ShardedClock) *STM {
	s := &STM{name: name, sharded: sc, orecs: make([]orec, orecCount)}
	mtr := telemetry.M(name)
	mtr.SetPolicySource(func() string { return cm.Or(s.cmgr).Policy().Name() })
	src := trace.S(name)
	s.pool.New = func() any {
		return &tx{s: s, hint: spin.NextShardHint(), tel: mtr.Local(), tr: src.Local()}
	}
	return s
}

// SetProfile attaches a critical-path profiler (may be nil).
func (s *STM) SetProfile(p *stm.Profile) { s.prof = p }

// SetManager installs the contention manager transactions run under (nil
// means the shared cm.Default manager). It must be set before any
// transaction runs.
func (s *STM) SetManager(m *cm.Manager) { s.cmgr = m }

// Name implements stm.Algorithm.
func (s *STM) Name() string { return s.name }

// Counters implements stm.Algorithm.
func (s *STM) Counters() *spin.Counters { return &s.ctr }

// Stop implements stm.Algorithm; TL2 has no background goroutines.
func (s *STM) Stop() {}

// Commits and Aborts report lifetime transaction outcomes.
func (s *STM) Commits() uint64 { return s.stats.commits.Load() }

// Aborts reports the number of aborted attempts.
func (s *STM) Aborts() uint64 { return s.stats.aborts.Load() }

// clockLoad samples the version clock (either flavor).
func (s *STM) clockLoad() uint64 {
	if s.sharded != nil {
		return s.sharded.Load()
	}
	return s.clock.Load()
}

// clockTick obtains a fresh write version. hint pins a sharded committer to
// its own cache line; the global clock ignores it.
func (s *STM) clockTick(hint uint32) uint64 {
	if s.sharded != nil {
		return s.sharded.Tick(hint)
	}
	return s.clock.Add(1)
}

// orecIdx maps a cell to its ownership-record index by hashing the cell id.
func orecIdx(c *mem.Cell) int {
	h := c.ID() * 0x9e3779b97f4a7c15
	return int(h >> (64 - orecBits))
}

// orecFor maps a cell to its ownership record.
func (s *STM) orecFor(c *mem.Cell) *orec {
	return &s.orecs[orecIdx(c)]
}

// orecTraceKey names an orec stripe in flight-recorder attributions. The
// high tag bit keeps stripe keys disjoint from cell ids in conflict tables.
func orecTraceKey(idx int) uint64 { return uint64(idx) | 1<<62 }

// tx is a TL2 transaction descriptor. It implements abort.TxRunner so the
// retry loop drives it without per-transaction closures, and carries scratch
// slices (reads, locked, seen) that amortize to zero steady-state
// allocation.
type tx struct {
	s      *STM
	rv     uint64
	hint   uint32 // clock/stat shard affinity for this descriptor
	reads  []*orec
	writes stm.WriteSet
	locked []lockedOrec
	seen   []lockedOrec // lockWriteSet scratch: distinct orecs, sorted by idx
	fn     func(stm.Tx)
	tel    *telemetry.Local
	tr     *trace.Local
}

type lockedOrec struct {
	o   *orec
	idx int    // table index, the global locking order
	old uint64 // pre-lock value, restored on abort
}

// Atomic implements stm.Algorithm.
func (s *STM) Atomic(fn func(stm.Tx)) { s.AtomicCtx(nil, fn) }

// AtomicCtx implements stm.AlgorithmCtx: Atomic observing ctx. The
// descriptor returns to its pool even when fn (or an armed failpoint)
// panics — the rollback path has already restored the locked orecs by then.
func (s *STM) AtomicCtx(ctx context.Context, fn func(stm.Tx)) error {
	t := s.pool.Get().(*tx)
	t.fn = fn
	defer func() {
		t.fn = nil
		t.reset()
		s.pool.Put(t)
	}()
	total := s.prof.Now()
	start := t.tel.Start()
	t.tr.TxStart()
	defer t.tr.TxEnd()
	escalated, err := abort.RunPolicyTxCtx(ctx, nil, cm.Or(s.cmgr), t)
	if escalated {
		t.tel.Escalated()
		t.tr.Escalated()
	}
	if err != nil {
		return err
	}
	s.stats.commits.Inc(t.hint)
	t.tel.Commit(start)
	s.prof.AddTotal(total, true)
	return nil
}

// Begin implements abort.TxRunner: start one attempt.
func (t *tx) Begin() {
	t.tr.AttemptStart()
	t.reset()
	t.rv = t.s.clockLoad()
}

// Attempt implements abort.TxRunner: run the body and commit.
func (t *tx) Attempt() {
	t.fn(t)
	cs := t.tel.Start()
	t.tr.CommitBegin()
	t.commit()
	t.tr.CommitEnd()
	t.tel.CommitPhase(cs)
}

// Rollback implements abort.TxRunner: undo a failed attempt.
func (t *tx) Rollback(r abort.Reason) {
	t.releaseLocked(true)
	t.s.stats.aborts.Inc(t.hint)
	t.tel.Abort(r)
	t.tr.Abort(r)
}

func (t *tx) reset() {
	t.reads = t.reads[:0]
	t.writes.Reset()
	t.locked = t.locked[:0]
	t.seen = t.seen[:0]
}

// Read implements stm.Tx with TL2's pre/post orec sampling.
func (t *tx) Read(c *mem.Cell) uint64 {
	if v, ok := t.writes.Get(c); ok {
		return v
	}
	o := t.s.orecFor(c)
	v1 := o.v.Load()
	val := c.Load()
	v2 := o.v.Load()
	if v1 != v2 || orecLocked(v1) || orecVersion(v1) > t.rv {
		t.tr.ValidateFail(c.ID())
		abort.Retry(abort.Conflict)
	}
	t.reads = append(t.reads, o)
	return val
}

// Write implements stm.Tx; writes are buffered until commit.
func (t *tx) Write(c *mem.Cell, v uint64) {
	t.writes.Put(c, v)
}

// commit runs TL2's lock / clock / validate / publish / release sequence.
func (t *tx) commit() {
	if t.writes.Len() == 0 {
		return
	}
	start := t.s.prof.Now()
	t.lockWriteSet()
	fpCommitLocked.Hit()
	wv := t.s.clockTick(t.hint)
	t.s.prof.AddCommit(start)
	// The classic skip — no other transaction committed between rv and wv,
	// so the read set cannot have changed — needs the clock to totally order
	// commits. The sharded clock does not, so TL2S always validates.
	if t.s.sharded != nil || wv != t.rv+1 {
		t.validateReads()
	}
	start = t.s.prof.Now()
	t.writes.Publish()
	for _, l := range t.locked {
		l.o.v.Store(wv << 1)
	}
	t.locked = t.locked[:0]
	t.s.prof.AddCommit(start)
}

// lockWriteSet acquires the distinct orecs covering the write set in
// ascending table order (deadlock avoidance); any busy orec aborts the
// transaction, releasing what was acquired. The dedup-and-sort runs on the
// descriptor's scratch slice with an insertion sort: write sets are small
// and sort.Slice's reflection allocates.
func (t *tx) lockWriteSet() {
	t.seen = t.seen[:0]
	for _, e := range t.writes.Entries() {
		idx := orecIdx(e.Cell)
		dup := false
		for _, l := range t.seen {
			if l.idx == idx {
				dup = true
				break
			}
		}
		if !dup {
			t.seen = append(t.seen, lockedOrec{o: &t.s.orecs[idx], idx: idx})
		}
	}
	for i := 1; i < len(t.seen); i++ {
		for j := i; j > 0 && t.seen[j].idx < t.seen[j-1].idx; j-- {
			t.seen[j], t.seen[j-1] = t.seen[j-1], t.seen[j]
		}
	}
	t.locked = t.locked[:0]
	for _, l := range t.seen {
		v := l.o.v.Load()
		if orecLocked(v) || orecVersion(v) > t.rv || !l.o.v.CompareAndSwap(v, v|1) {
			t.s.ctr.IncCAS()
			t.tr.LockBusy(orecTraceKey(l.idx))
			abort.Retry(abort.LockBusy)
		}
		t.tr.Lock(orecTraceKey(l.idx))
		t.locked = append(t.locked, lockedOrec{o: l.o, idx: l.idx, old: v})
	}
}

// validateReads checks every read-set orec: it must be unlocked (or locked
// by this transaction) with a version no newer than rv.
func (t *tx) validateReads() {
	start := t.s.prof.Now()
	defer t.s.prof.AddValidation(start)
	for _, o := range t.reads {
		v := o.v.Load()
		if orecLocked(v) {
			old, mine := t.ownedOld(o)
			if !mine || orecVersion(old) > t.rv {
				abort.Retry(abort.Conflict)
			}
			continue
		}
		if orecVersion(v) > t.rv {
			abort.Retry(abort.Conflict)
		}
	}
	t.tr.Validated()
}

// ownedOld reports whether this transaction holds o, returning the pre-lock
// value if so.
func (t *tx) ownedOld(o *orec) (uint64, bool) {
	for _, l := range t.locked {
		if l.o == o {
			return l.old, true
		}
	}
	return 0, false
}

// releaseLocked unlocks any orecs held by an aborting transaction. With
// restore=true the pre-lock versions are put back (no writes were
// published).
func (t *tx) releaseLocked(restore bool) {
	for _, l := range t.locked {
		if restore {
			l.o.v.Store(l.old)
		} else {
			l.o.v.Store(l.old &^ 1)
		}
	}
	t.locked = t.locked[:0]
}

var _ stm.Algorithm = (*STM)(nil)
