package tl2

import (
	"testing"

	"repro/internal/mem"
	"repro/internal/stm"
)

func TestReadYourOwnWrites(t *testing.T) {
	s := New()
	c := mem.NewCell(1)
	s.Atomic(func(tx stm.Tx) {
		tx.Write(c, 2)
		if tx.Read(c) != 2 {
			t.Error("read-after-write must see the buffered value")
		}
	})
	if c.Load() != 2 {
		t.Fatal("commit did not publish")
	}
}

func TestClockAdvancesPerWriter(t *testing.T) {
	s := New()
	c := mem.NewCell(0)
	before := s.clock.Load()
	s.Atomic(func(tx stm.Tx) { tx.Write(c, 1) })
	s.Atomic(func(tx stm.Tx) { tx.Write(c, 2) })
	if got := s.clock.Load(); got != before+2 {
		t.Fatalf("clock = %d, want %d", got, before+2)
	}
}

func TestOrecStampedWithWriteVersion(t *testing.T) {
	s := New()
	c := mem.NewCell(0)
	s.Atomic(func(tx stm.Tx) { tx.Write(c, 1) })
	o := s.orecFor(c)
	v := o.v.Load()
	if orecLocked(v) {
		t.Fatal("orec left locked after commit")
	}
	if orecVersion(v) != s.clock.Load() {
		t.Fatalf("orec version %d != clock %d", orecVersion(v), s.clock.Load())
	}
}

func TestStaleReadAborts(t *testing.T) {
	// A cell whose orec is newer than the transaction's read version must
	// abort the reader (simulated by writing between begin and read via a
	// nested-algorithm trick: we advance the clock and stamp the orec).
	s := New()
	c := mem.NewCell(0)
	aborted := false
	attempts := 0
	s.Atomic(func(tx stm.Tx) {
		attempts++
		if attempts == 1 {
			// Commit a conflicting write "concurrently" (same instance,
			// different logical transaction executed inline).
			done := make(chan struct{})
			go func() {
				s.Atomic(func(tx2 stm.Tx) { tx2.Write(c, 9) })
				close(done)
			}()
			<-done
			aborted = true // the next Read must observe a too-new orec
		}
		tx.Read(c)
	})
	if !aborted {
		t.Fatal("test did not exercise the stale-read path")
	}
	if attempts != 2 {
		t.Fatalf("attempts = %d, want 2 (first aborts on stale orec)", attempts)
	}
}

func TestAbortReleasesOrecs(t *testing.T) {
	s := New()
	a, b := mem.NewCell(0), mem.NewCell(0)
	// Force one abort mid-commit via a conflicting commit after the reads.
	attempts := 0
	s.Atomic(func(tx stm.Tx) {
		attempts++
		tx.Read(a)
		if attempts == 1 {
			done := make(chan struct{})
			go func() {
				s.Atomic(func(tx2 stm.Tx) { tx2.Write(a, 7) })
				close(done)
			}()
			<-done
		}
		tx.Write(b, 1)
	})
	// If the aborted attempt leaked its orec lock, this write would hang.
	s.Atomic(func(tx stm.Tx) { tx.Write(b, 2) })
	if b.Load() != 2 {
		t.Fatalf("b = %d, want 2", b.Load())
	}
	if a.Load() != 7 {
		t.Fatalf("a = %d, want 7", a.Load())
	}
}
