package stm_test

import (
	"testing"

	"repro/internal/race"

	"repro/internal/mem"
	"repro/internal/stm"
	"repro/internal/stm/norec"
	"repro/internal/stm/tl2"
)

// These tests pin the allocation-free STM commit fast path (ISSUE 6): a
// steady-state write transaction — begin, read with validation, buffered
// write, lock/validate/publish commit, descriptor recycling — must not
// allocate for NOrec and TL2 (both clock flavors). They run under -short so
// the CI smoke lane enforces them on every PR.

const allocWarmup = 200

func runAllocTx(t *testing.T, name string, fn func()) {
	t.Helper()
	if race.Enabled {
		t.Skip("race-mode sync.Pool drops Puts at random; pooled paths cannot be allocation-free")
	}
	for i := 0; i < allocWarmup; i++ {
		fn()
	}
	if allocs := testing.AllocsPerRun(1000, fn); allocs > 0 {
		t.Errorf("%s: %.2f allocs/op on the commit path, want 0", name, allocs)
	}
}

// writeTxAllocFree asserts a read-modify-write transaction over a few cells
// is allocation-free once pools and scratch slices are warm.
func writeTxAllocFree(t *testing.T, alg stm.Algorithm) {
	defer alg.Stop()
	cells := [4]*mem.Cell{mem.NewCell(0), mem.NewCell(0), mem.NewCell(0), mem.NewCell(0)}
	body := func(tx stm.Tx) {
		for _, c := range cells {
			tx.Write(c, tx.Read(c)+1)
		}
	}
	runAllocTx(t, alg.Name()+" write tx", func() { alg.Atomic(body) })
}

// readTxAllocFree asserts a read-only transaction is allocation-free.
func readTxAllocFree(t *testing.T, alg stm.Algorithm) {
	defer alg.Stop()
	cells := [4]*mem.Cell{mem.NewCell(1), mem.NewCell(2), mem.NewCell(3), mem.NewCell(4)}
	body := func(tx stm.Tx) {
		var sum uint64
		for _, c := range cells {
			sum += tx.Read(c)
		}
		_ = sum
	}
	runAllocTx(t, alg.Name()+" read tx", func() { alg.Atomic(body) })
}

func TestNOrecWriteTxAllocFree(t *testing.T) { writeTxAllocFree(t, norec.New()) }
func TestNOrecReadTxAllocFree(t *testing.T)  { readTxAllocFree(t, norec.New()) }

func TestTL2WriteTxAllocFree(t *testing.T) { writeTxAllocFree(t, tl2.New()) }
func TestTL2ReadTxAllocFree(t *testing.T)  { readTxAllocFree(t, tl2.New()) }

func TestTL2ShardedWriteTxAllocFree(t *testing.T) { writeTxAllocFree(t, tl2.NewSharded()) }

// benchWriteTx reports ns/op and allocs/op for an algorithm's write-commit
// fast path (single worker — the allocation trajectory companion to the
// throughput matrix).
func benchWriteTx(b *testing.B, alg stm.Algorithm) {
	defer alg.Stop()
	cells := [4]*mem.Cell{mem.NewCell(0), mem.NewCell(0), mem.NewCell(0), mem.NewCell(0)}
	body := func(tx stm.Tx) {
		for _, c := range cells {
			tx.Write(c, tx.Read(c)+1)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		alg.Atomic(body)
	}
}

func BenchmarkNOrecWriteTx(b *testing.B)      { benchWriteTx(b, norec.New()) }
func BenchmarkTL2WriteTx(b *testing.B)        { benchWriteTx(b, tl2.New()) }
func BenchmarkTL2ShardedWriteTx(b *testing.B) { benchWriteTx(b, tl2.NewSharded()) }
