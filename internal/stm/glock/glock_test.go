package glock

import (
	"sync"
	"testing"

	"repro/internal/abort"
	"repro/internal/mem"
	"repro/internal/stm"
)

func TestSerializesEverything(t *testing.T) {
	s := New()
	c := mem.NewCell(0)
	const workers = 8
	const each = 300
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < each; i++ {
				s.Atomic(func(tx stm.Tx) { tx.Write(c, tx.Read(c)+1) })
			}
		}()
	}
	wg.Wait()
	if got := c.Load(); got != workers*each {
		t.Fatalf("counter = %d, want %d", got, workers*each)
	}
}

func TestExplicitRetryUndoes(t *testing.T) {
	s := New()
	c := mem.NewCell(5)
	attempts := 0
	s.Atomic(func(tx stm.Tx) {
		attempts++
		tx.Write(c, 99)
		if attempts == 1 {
			if tx.Read(c) != 99 {
				t.Error("eager write should be visible")
			}
			abort.Retry(abort.Explicit)
		}
		if got := tx.Read(c); got != 99 {
			// Second attempt starts from the restored value 5, then our
			// fresh Write(99) applies again.
			t.Errorf("read = %d, want 99 (rewritten this attempt)", got)
		}
	})
	if attempts != 2 || c.Load() != 99 {
		t.Fatalf("attempts=%d c=%d", attempts, c.Load())
	}
	if s.Aborts() != 1 {
		t.Fatalf("aborts = %d, want 1", s.Aborts())
	}
}
