// Package glock implements the coarse global-lock "STM": every atomic block
// runs under a single mutex. The paper uses this as the sequential baseline
// (RSTM's CGL) for single-thread overhead comparisons; the harness also uses
// it as the reference executor when checking other algorithms' results.
package glock

import (
	"context"
	"sync"
	"sync/atomic"

	"repro/internal/abort"
	"repro/internal/chaos/failpoint"
	"repro/internal/cm"
	"repro/internal/mem"
	"repro/internal/spin"
	"repro/internal/stm"
	"repro/internal/telemetry"
	"repro/internal/trace"
)

// lockTraceKey tags flight-recorder lock events for the single global
// mutex, which has no per-cell identity.
const lockTraceKey = 1<<60 | 2

// fpCommitPre fires at the end of the body, with the global mutex held and
// in-place writes applied; recovery must replay the undo log (the deferred
// mutex unlock releases the lock).
var fpCommitPre = failpoint.New("glock.commit.pre")

// STM is a global-lock instance.
type STM struct {
	mu    sync.Mutex
	ctr   spin.Counters
	cmgr  *cm.Manager
	stats struct {
		commits atomic.Uint64
		aborts  atomic.Uint64
	}
	// tel is shared by all transactions: the global mutex already
	// serializes them, so one shard sees no contention.
	tel *telemetry.Local
	// tr is shared for the same reason.
	tr *trace.Local
}

// New creates a global-lock instance.
func New() *STM {
	s := &STM{}
	mtr := telemetry.M("CGL")
	mtr.SetPolicySource(func() string { return cm.Or(s.cmgr).Policy().Name() })
	s.tel = mtr.Local()
	s.tr = trace.S("CGL").Local()
	return s
}

// SetManager installs the contention manager transactions run under (nil
// means the shared cm.Default manager). It must be set before any
// transaction runs. Under the global lock only explicit user retries abort,
// so escalation triggers only for transactions that retry past the budget.
func (s *STM) SetManager(m *cm.Manager) { s.cmgr = m }

// Name implements stm.Algorithm.
func (s *STM) Name() string { return "CGL" }

// Counters implements stm.Algorithm.
func (s *STM) Counters() *spin.Counters { return &s.ctr }

// Stop implements stm.Algorithm; there are no background goroutines.
func (s *STM) Stop() {}

// Commits and Aborts report lifetime transaction outcomes.
func (s *STM) Commits() uint64 { return s.stats.commits.Load() }

// Aborts reports the number of aborted attempts (explicit retries only;
// the global lock admits no conflicts).
func (s *STM) Aborts() uint64 { return s.stats.aborts.Load() }

// tx executes reads and writes in place under the global lock, keeping an
// undo log so explicit user retries can roll back. It implements
// abort.TxRunner so the retry loop drives it without per-transaction
// closures; descriptors are pooled (the global mutex serializes
// transactions, but each caller still needs its own undo log between Get
// and Put).
type tx struct {
	s    *STM
	undo []stm.WriteEntry
	fn   func(stm.Tx)
}

var txPool = sync.Pool{New: func() any { return &tx{} }}

// Begin implements abort.TxRunner: start one attempt.
func (t *tx) Begin() {
	t.undo = t.undo[:0]
	t.s.tr.AttemptStart()
}

// Attempt implements abort.TxRunner: run the body (writes apply in place).
func (t *tx) Attempt() {
	t.fn(t)
	fpCommitPre.Hit()
}

// Rollback implements abort.TxRunner: replay the undo log.
func (t *tx) Rollback(r abort.Reason) {
	for i := len(t.undo) - 1; i >= 0; i-- {
		t.undo[i].Cell.Store(t.undo[i].Val)
	}
	t.s.stats.aborts.Add(1)
	t.s.tr.Abort(r)
	t.s.tel.Abort(r)
}

// Read implements stm.Tx.
func (t *tx) Read(c *mem.Cell) uint64 { return c.Load() }

// Write implements stm.Tx.
func (t *tx) Write(c *mem.Cell, v uint64) {
	t.undo = append(t.undo, stm.WriteEntry{Cell: c, Val: c.Load()})
	c.Store(v)
}

// Atomic implements stm.Algorithm.
func (s *STM) Atomic(fn func(stm.Tx)) { s.AtomicCtx(nil, fn) }

// AtomicCtx implements stm.AlgorithmCtx: Atomic observing ctx. The global
// mutex is released by defer on every exit, including foreign panics; the
// rollback path replays the undo log first.
func (s *STM) AtomicCtx(ctx context.Context, fn func(stm.Tx)) error {
	t := txPool.Get().(*tx)
	t.s = s
	t.fn = fn
	defer func() {
		t.s = nil
		t.fn = nil
		t.undo = t.undo[:0]
		txPool.Put(t)
	}()
	s.mu.Lock()
	defer s.mu.Unlock()
	start := s.tel.Start()
	s.tr.TxStart()
	defer s.tr.TxEnd()
	s.tr.Lock(lockTraceKey)
	defer s.tr.Unlock(lockTraceKey)
	escalated, err := abort.RunPolicyTxCtx(ctx, nil, cm.Or(s.cmgr), t)
	if escalated {
		s.tr.Escalated()
		s.tel.Escalated()
	}
	if err != nil {
		return err
	}
	s.stats.commits.Add(1)
	s.tel.Commit(start)
	return nil
}

var _ stm.Algorithm = (*STM)(nil)
