// Package norec implements NOrec [Dalessandro, Spear & Scott, PPoPP 2010]:
// a lazy STM with no ownership records, a single global timestamped lock,
// and value-based validation. NOrec is the base algorithm extended by OTB's
// integration framework (Chapter 4) and by Remote Transaction Commit
// (Chapter 5).
//
// Protocol summary:
//   - Begin: wait for an even global timestamp and snapshot it.
//   - Read: return buffered write if any; otherwise read the cell and, if
//     the timestamp moved, re-run value-based validation until a consistent
//     snapshot is obtained (guaranteeing opacity).
//   - Commit (writers): CAS the timestamp from the snapshot to odd,
//     re-validating on failure; publish the redo log; release (even).
//     Read-only transactions commit without any shared-memory writes.
package norec

import (
	"context"
	"sync"

	"repro/internal/abort"
	"repro/internal/chaos/failpoint"
	"repro/internal/cm"
	"repro/internal/mem"
	"repro/internal/spin"
	"repro/internal/stm"
	"repro/internal/telemetry"
	"repro/internal/trace"
)

// Failpoints on the NOrec validation and commit paths.
var (
	// fpValidateMid fires inside value-based validation — lock-free, so any
	// action is recoverable.
	fpValidateMid = failpoint.New("norec.validate.mid")
	// fpCommitLocked fires with the global sequence lock held, before the
	// redo log is published; recovery must restore the pre-lock timestamp.
	fpCommitLocked = failpoint.New("norec.commit.locked")
)

// STM is a NOrec instance. Transactions from different STM instances are
// not synchronized with each other.
type STM struct {
	// clock is NOrec's single serialization point: every writer commit CASes
	// it, so unlike TL2's version clock it cannot be sharded (see DESIGN.md).
	// Padding keeps it alone on its cache line so the adjacent counters do
	// not steal it from committers.
	clock spin.SeqLock
	_     [spin.CacheLineSize - 8]byte
	ctr   spin.Counters
	prof  *stm.Profile
	cmgr  *cm.Manager
	stats struct {
		commits spin.ShardedU64
		aborts  spin.ShardedU64
	}
	pool sync.Pool
}

// New creates a NOrec instance.
func New() *STM {
	s := &STM{}
	mtr := telemetry.M("NOrec")
	mtr.SetPolicySource(func() string { return cm.Or(s.cmgr).Policy().Name() })
	src := trace.S("NOrec")
	s.pool.New = func() any {
		return &tx{s: s, hint: spin.NextShardHint(), tel: mtr.Local(), tr: src.Local()}
	}
	return s
}

// SetProfile attaches a critical-path profiler (may be nil). It must be set
// before any transaction runs.
func (s *STM) SetProfile(p *stm.Profile) { s.prof = p }

// SetManager installs the contention manager transactions run under (nil
// means the shared cm.Default manager). It must be set before any
// transaction runs.
func (s *STM) SetManager(m *cm.Manager) { s.cmgr = m }

// Name implements stm.Algorithm.
func (s *STM) Name() string { return "NOrec" }

// Counters implements stm.Algorithm.
func (s *STM) Counters() *spin.Counters { return &s.ctr }

// Stop implements stm.Algorithm. NOrec has no background goroutines.
func (s *STM) Stop() {}

// Commits and Aborts report the lifetime transaction outcomes.
func (s *STM) Commits() uint64 { return s.stats.commits.Load() }

// Aborts reports the number of aborted attempts.
func (s *STM) Aborts() uint64 { return s.stats.aborts.Load() }

// Clock exposes the global sequence lock for layers that extend NOrec
// (the OTB integration context).
func (s *STM) Clock() *spin.SeqLock { return &s.clock }

// tx is a NOrec transaction descriptor, reused across attempts. It
// implements abort.TxRunner so the retry loop drives it without
// per-transaction closures.
type tx struct {
	s          *STM
	snapshot   uint64
	hint       uint32 // stat shard affinity for this descriptor
	holdsClock bool   // global lock held (commit in progress)
	reads      []stm.ReadEntry
	writes     stm.WriteSet
	fn         func(stm.Tx)
	tel        *telemetry.Local
	tr         *trace.Local
}

// Atomic implements stm.Algorithm.
func (s *STM) Atomic(fn func(stm.Tx)) { s.AtomicCtx(nil, fn) }

// AtomicCtx implements stm.AlgorithmCtx: Atomic observing ctx. The
// descriptor returns to its pool even when fn (or an armed failpoint)
// panics — the rollback path has already released the global lock by then.
func (s *STM) AtomicCtx(ctx context.Context, fn func(stm.Tx)) error {
	t := s.pool.Get().(*tx)
	t.fn = fn
	defer func() {
		t.fn = nil
		t.reads = t.reads[:0]
		t.writes.Reset()
		s.pool.Put(t)
	}()
	total := s.prof.Now()
	start := t.tel.Start()
	t.tr.TxStart()
	defer t.tr.TxEnd()
	escalated, err := abort.RunPolicyTxCtx(ctx, nil, cm.Or(s.cmgr), t)
	if escalated {
		t.tel.Escalated()
		t.tr.Escalated()
	}
	if err != nil {
		return err
	}
	s.stats.commits.Inc(t.hint)
	t.tel.Commit(start)
	s.prof.AddTotal(total, true)
	return nil
}

// Attempt implements abort.TxRunner: run the body and commit.
func (t *tx) Attempt() {
	t.fn(t)
	cs := t.tel.Start()
	t.tr.CommitBegin()
	t.commit()
	t.tr.CommitEnd()
	t.tel.CommitPhase(cs)
}

// Rollback implements abort.TxRunner: undo a failed attempt.
func (t *tx) Rollback(r abort.Reason) {
	t.rollback()
	t.s.stats.aborts.Inc(t.hint)
	t.tel.Abort(r)
	t.tr.Abort(r)
}

// rollback releases the global lock if this attempt died holding it (an
// armed failpoint or foreign panic between lock and publish). Nothing was
// published, so the pre-lock timestamp is restored — concurrent readers saw
// only an odd (locked) clock and re-validate against unchanged memory.
func (t *tx) rollback() {
	if t.holdsClock {
		t.holdsClock = false
		t.s.clock.UnlockUnchanged()
	}
}

// Begin implements abort.TxRunner: start one attempt.
func (t *tx) Begin() {
	t.tr.AttemptStart()
	t.reads = t.reads[:0]
	t.writes.Reset()
	t.snapshot = t.s.clock.WaitUnlocked(&t.s.ctr)
}

// Read implements stm.Tx with NOrec's post-read validation loop.
func (t *tx) Read(c *mem.Cell) uint64 {
	if v, ok := t.writes.Get(c); ok {
		return v
	}
	v := c.Load()
	for t.snapshot != t.s.clock.Load() {
		t.snapshot = t.validate()
		v = c.Load()
	}
	t.reads = append(t.reads, stm.ReadEntry{Cell: c, Val: v})
	return v
}

// Write implements stm.Tx; writes are buffered until commit.
func (t *tx) Write(c *mem.Cell, v uint64) {
	t.writes.Put(c, v)
}

// validate re-checks every read value against memory, retrying until it
// observes a quiescent (even, unchanged) timestamp. It returns the
// validated timestamp, or aborts the transaction on a value mismatch.
func (t *tx) validate() uint64 {
	start := t.s.prof.Now()
	defer t.s.prof.AddValidation(start)
	fpValidateMid.Hit()
	var b spin.Backoff
	for {
		ts := t.s.clock.Load()
		if spin.IsLocked(ts) {
			t.s.ctr.IncSpin()
			b.Wait()
			continue
		}
		for i := range t.reads {
			if t.reads[i].Cell.Load() != t.reads[i].Val {
				t.tr.ValidateFail(t.reads[i].Cell.ID())
				abort.Retry(abort.Conflict)
			}
		}
		if ts == t.s.clock.Load() {
			t.tr.Validated()
			return ts
		}
	}
}

// commit publishes the redo log under the global lock. Read-only
// transactions return immediately: their incremental validation already
// serialized them at the last validated snapshot.
func (t *tx) commit() {
	if t.writes.Len() == 0 {
		return
	}
	// The commit timer is paused around validate so validation time is not
	// double-charged (validate charges itself to the validation bucket).
	start := t.s.prof.Now()
	for !t.s.clock.TryLock(t.snapshot) {
		t.s.ctr.IncCAS()
		t.s.prof.AddCommit(start)
		t.snapshot = t.validate()
		start = t.s.prof.Now()
	}
	t.holdsClock = true
	fpCommitLocked.Hit()
	t.writes.Publish()
	t.s.clock.Unlock()
	t.holdsClock = false
	t.s.prof.AddCommit(start)
}

var _ stm.Algorithm = (*STM)(nil)
