package norec_test

import (
	"testing"

	"repro/internal/abort"
	"repro/internal/chaos"
	"repro/internal/cm"
	"repro/internal/mem"
	"repro/internal/stm"
	"repro/internal/stm/norec"
	"repro/internal/telemetry"
)

// TestChaosStarvationEscalatesNOrec is the NOrec analogue of the OTB
// starvation test: a long read-mostly transaction under a 16-goroutine write
// storm exhausts its retry budget (deterministically, via the forced-abort
// injector) and must commit through serial-mode escalation.
func TestChaosStarvationEscalatesNOrec(t *testing.T) {
	const budget = 12
	mgr := cm.New(cm.Aggressive, budget)
	s := norec.New()
	s.SetManager(mgr)
	defer s.Stop()
	telemetry.Enable()
	t.Cleanup(telemetry.Disable)
	before := telemetry.M("NOrec").Snapshot().Escalations

	cells := make([]*mem.Cell, 64)
	for i := range cells {
		cells[i] = mem.NewCell(uint64(i))
	}
	result := mem.NewCell(0)

	stop := chaos.Storm(16, func(w int) {
		s.Atomic(func(tx stm.Tx) {
			c := cells[w%8] // collide heavily
			tx.Write(c, tx.Read(c)+1)
		})
	})
	defer stop()

	inj := chaos.NewAbortInjector(budget, abort.Conflict)
	attempts := 0
	s.Atomic(func(tx stm.Tx) {
		attempts++
		var sum uint64
		for _, c := range cells[8:] { // read-mostly: storm-free cells
			sum += tx.Read(c)
		}
		inj.Hit()
		tx.Write(result, sum)
	})
	stop()

	if attempts != budget+1 {
		t.Errorf("attempts = %d, want %d", attempts, budget+1)
	}
	if got := mgr.Escalations(); got < 1 {
		t.Fatalf("manager escalations = %d, want >= 1", got)
	}
	after := telemetry.M("NOrec").Snapshot().Escalations
	if after <= before {
		t.Fatalf("telemetry escalations = %d, want > %d", after, before)
	}
	var got uint64
	s.Atomic(func(tx stm.Tx) { got = tx.Read(result) })
	want := uint64(0)
	for i := 8; i < 64; i++ {
		want += uint64(i)
	}
	if got != want {
		t.Fatalf("escalated transaction wrote %d, want %d", got, want)
	}
}
