package norec

import (
	"testing"

	"repro/internal/mem"
	"repro/internal/spin"
	"repro/internal/stm"
)

func TestReadYourOwnWrites(t *testing.T) {
	s := New()
	c := mem.NewCell(1)
	s.Atomic(func(tx stm.Tx) {
		if tx.Read(c) != 1 {
			t.Error("initial read wrong")
		}
		tx.Write(c, 2)
		if tx.Read(c) != 2 {
			t.Error("read-after-write must see the buffered value")
		}
	})
	if c.Load() != 2 {
		t.Fatal("commit did not publish")
	}
}

func TestReadOnlyCommitsWithoutClockBump(t *testing.T) {
	s := New()
	c := mem.NewCell(5)
	before := s.Clock().Load()
	s.Atomic(func(tx stm.Tx) { tx.Read(c) })
	if after := s.Clock().Load(); after != before {
		t.Fatalf("read-only transaction moved the clock %d -> %d", before, after)
	}
}

func TestWriterBumpsClockByTwo(t *testing.T) {
	s := New()
	c := mem.NewCell(0)
	before := s.Clock().Load()
	s.Atomic(func(tx stm.Tx) { tx.Write(c, 1) })
	after := s.Clock().Load()
	if after != before+2 {
		t.Fatalf("writer moved the clock %d -> %d, want +2", before, after)
	}
	if spin.IsLocked(after) {
		t.Fatal("clock left locked")
	}
}

func TestSnapshotExtensionOnClockMove(t *testing.T) {
	// A concurrent commit between two reads must extend (revalidate) the
	// snapshot rather than return torn values.
	s := New()
	a, b := mem.NewCell(1), mem.NewCell(1)
	readerIn := make(chan struct{})
	readerGo := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		s.Atomic(func(tx stm.Tx) {
			va := tx.Read(a)
			select {
			case <-readerIn: // signal only on the first attempt
			default:
			}
			<-readerGo
			vb := tx.Read(b)
			// Either both old or both new; never mixed. If the writer's
			// commit invalidated va, this attempt aborts and retries with
			// both new values.
			if va != vb {
				t.Errorf("torn read: a=%d b=%d", va, vb)
			}
		})
	}()
	// Wait for the reader to read a, then commit a conflicting write.
	readerIn <- struct{}{}
	s.Atomic(func(tx stm.Tx) {
		tx.Write(a, 2)
		tx.Write(b, 2)
	})
	close(readerGo)
	<-done
}

func TestAbortStatsCount(t *testing.T) {
	s := New()
	if s.Commits() != 0 {
		t.Fatal("fresh instance has commits")
	}
	c := mem.NewCell(0)
	for i := 0; i < 10; i++ {
		s.Atomic(func(tx stm.Tx) { tx.Write(c, tx.Read(c)+1) })
	}
	if s.Commits() != 10 {
		t.Fatalf("commits = %d, want 10", s.Commits())
	}
}
