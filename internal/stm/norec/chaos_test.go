package norec_test

import (
	"runtime"
	"sync/atomic"
	"testing"

	"repro/internal/chaos"
	"repro/internal/mem"
	"repro/internal/stm"
	"repro/internal/stm/norec"
)

// TestChaosConcurrentWriterInvalidatesReader interleaves a committed write
// into a reader's execution via the chaos helper: the reader's value-based
// validation must abort the stale attempt and the retry must see the new
// value.
func TestChaosConcurrentWriterInvalidatesReader(t *testing.T) {
	s := norec.New()
	defer s.Stop()
	a, b := mem.NewCell(1), mem.NewCell(2)
	attempts := 0
	s.Atomic(func(tx stm.Tx) {
		attempts++
		v := tx.Read(a)
		if attempts == 1 {
			if v != 1 {
				t.Errorf("first attempt read %d, want 1", v)
			}
			chaos.CommitConcurrently(func() {
				s.Atomic(func(tx2 stm.Tx) { tx2.Write(a, 100); tx2.Write(b, 200) })
			})
			// The committed writer moved the clock and overwrote a; the next
			// read's validation loop must doom this attempt.
			tx.Read(b)
			t.Error("validation should have aborted attempt 1")
		} else if v != 100 {
			t.Errorf("retry read %d, want 100", v)
		}
	})
	if attempts != 2 {
		t.Fatalf("attempts = %d, want 2", attempts)
	}
	if s.Aborts() == 0 {
		t.Fatal("expected at least one recorded abort")
	}
}

// TestChaosStormLostUpdate hammers one counter cell from a storm of
// read-modify-write transactions; the final value must equal the number of
// committed increments (no lost updates despite the contention).
func TestChaosStormLostUpdate(t *testing.T) {
	s := norec.New()
	defer s.Stop()
	c := mem.NewCell(0)
	const workers = 8
	const perWorker = 200
	var done [workers]atomic.Int64
	stop := chaos.Storm(workers, func(w int) {
		if done[w].Load() >= perWorker {
			runtime.Gosched() // keep spinning until every worker is finished
			return
		}
		s.Atomic(func(tx stm.Tx) { tx.Write(c, tx.Read(c)+1) })
		done[w].Add(1)
	})
	// Storm workers run until stopped; wait for all quotas then halt.
	for {
		total := 0
		for w := 0; w < workers; w++ {
			if done[w].Load() >= perWorker {
				total++
			}
		}
		if total == workers {
			break
		}
		runtime.Gosched()
	}
	stop()
	var got uint64
	s.Atomic(func(tx stm.Tx) { got = tx.Read(c) })
	if got != workers*perWorker {
		t.Fatalf("counter = %d, want %d", got, workers*perWorker)
	}
}
