package invalstm_test

import (
	"testing"

	"repro/internal/lincheck"
	"repro/internal/stm/invalstm"
)

// TestOpacityInvalSTM records a contended transactional workload and checks
// that some commit order of the committed transactions explains every read,
// respects real-time order, and leaves each aborted attempt with a
// consistent view (see internal/lincheck).
func TestOpacityInvalSTM(t *testing.T) {
	s := invalstm.New()
	defer s.Stop()
	cfg := lincheck.DefaultSTMConfig(105)
	if testing.Short() {
		cfg = cfg.Scaled(2)
	}
	lincheck.StressSTM(t, s, cfg)
}
