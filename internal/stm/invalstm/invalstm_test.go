package invalstm

import (
	"sync"
	"testing"

	"repro/internal/bloom"
	"repro/internal/mem"
	"repro/internal/stm"
)

func TestReadYourOwnWrites(t *testing.T) {
	s := New()
	c := mem.NewCell(1)
	s.Atomic(func(tx stm.Tx) {
		tx.Write(c, 2)
		if tx.Read(c) != 2 {
			t.Error("read-after-write must see the buffered value")
		}
	})
	if c.Load() != 2 {
		t.Fatal("commit did not publish")
	}
}

func TestCommitterInvalidatesConflictingReader(t *testing.T) {
	s := New()
	c := mem.NewCell(0)
	readerRead := make(chan struct{})
	writerDone := make(chan struct{})
	attempts := 0
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		s.Atomic(func(tx stm.Tx) {
			attempts++
			tx.Read(c)
			if attempts == 1 {
				close(readerRead)
				<-writerDone
				// The writer's commit intersected our read filter, so our
				// own (read-only) commit must abort.
			}
		})
	}()
	<-readerRead
	s.Atomic(func(tx stm.Tx) { tx.Write(c, 1) })
	close(writerDone)
	wg.Wait()
	if attempts != 2 {
		t.Fatalf("reader attempts = %d, want 2 (doomed once)", attempts)
	}
}

func TestShouldDeferPriority(t *testing.T) {
	var starving, fresh Desc
	starving.Starved.Store(StarveLimit + 2)
	// Non-starving committers defer to a starving transaction.
	if !ShouldDefer(&starving, 0, 0, 5) {
		t.Error("fresh committer must defer to starving slot 0")
	}
	// A non-starving conflicting transaction never forces deferral.
	if ShouldDefer(&fresh, 0, 0, 5) {
		t.Error("must not defer to a non-starving transaction")
	}
	// Among starving transactions, the lowest slot wins.
	if !ShouldDefer(&starving, 0, StarveLimit+1, 5) {
		t.Error("slot 5 must defer to starving slot 0")
	}
	if ShouldDefer(&starving, 5, StarveLimit+1, 0) {
		t.Error("slot 0 must not defer to starving slot 5")
	}
}

func TestDescFilterRoundtrip(t *testing.T) {
	var d Desc
	var wf bloom.Filter
	wf.Add(7)
	if d.IntersectsWrite(&wf) {
		t.Fatal("empty read filter intersects nothing")
	}
	publishRead(&d, 7)
	if !d.IntersectsWrite(&wf) {
		t.Fatal("published read of 7 must intersect a write of 7")
	}
	d.ClearFilter()
	if d.IntersectsWrite(&wf) {
		t.Fatal("cleared filter intersects nothing")
	}
}
