// Package invalstm implements commit-time invalidation STM [Gottschlich,
// Vachharajani & Siek, CGO 2010], the baseline that Remote Invalidation
// (Chapter 6) extends. Instead of readers validating their own read sets
// (quadratic in reads, as in NOrec), a committing writer invalidates every
// in-flight transaction whose read bloom filter intersects its write bloom
// filter, making per-read work constant.
package invalstm

import (
	"context"
	"sync"
	"sync/atomic"

	"repro/internal/abort"
	"repro/internal/bloom"
	"repro/internal/chaos/failpoint"
	"repro/internal/cm"
	"repro/internal/mem"
	"repro/internal/spin"
	"repro/internal/stm"
	"repro/internal/telemetry"
	"repro/internal/trace"
)

// clockTraceKey tags flight-recorder lock events for the single global
// commit lock, which has no per-cell identity.
const clockTraceKey = 1<<60 | 1

// fpCommitLocked fires with the global lock held, before victims are chosen
// or anything is published; recovery must restore the pre-lock timestamp
// and release the registry slot.
var fpCommitLocked = failpoint.New("invalstm.commit.locked")

// MaxTxs is the size of the in-flight transaction registry.
const MaxTxs = 256

// Desc is one registry slot: the published read filter and the doomed flag
// set by committing writers. It is exported for reuse by Remote
// Invalidation, which shares the registry design.
type Desc struct {
	Active      atomic.Bool
	Invalidated atomic.Bool
	// Starved counts consecutive invalidation aborts; the contention
	// manager makes committers defer to sufficiently starved transactions
	// (InvalSTM's CM decides whether the committer, rather than the
	// conflicting transactions, should wait or abort).
	Starved    atomic.Uint32
	ReadFilter [bloom.Words]atomic.Uint64
	_          spin.Pad
}

// StarveLimit is the consecutive-abort count at which the contention
// manager starts deferring committers to a doomed transaction.
const StarveLimit = 4

// ShouldDefer reports whether a committer with starvation level mine at
// registry slot mySlot must defer to the conflicting transaction d at slot.
// Non-starving committers always defer to starving transactions; among
// starving ones the lowest slot wins. The winner's priority is stable (it
// does not depend on the racing counters), so exactly one starving
// transaction at a time never defers and the system always progresses.
func ShouldDefer(d *Desc, slot int, mine uint32, mySlot int) bool {
	if d.Starved.Load() < StarveLimit {
		return false
	}
	return mine < StarveLimit || slot < mySlot
}

// ClearFilter empties the descriptor's published read filter.
func (d *Desc) ClearFilter() {
	for i := range d.ReadFilter {
		d.ReadFilter[i].Store(0)
	}
}

// IntersectsWrite reports whether the descriptor's read filter intersects a
// committer's write filter.
func (d *Desc) IntersectsWrite(wf *bloom.Filter) bool {
	for i := range wf {
		if d.ReadFilter[i].Load()&wf[i] != 0 {
			return true
		}
	}
	return false
}

// STM is an InvalSTM instance.
type STM struct {
	clock spin.SeqLock
	descs [MaxTxs]Desc
	ctr   spin.Counters
	prof  *stm.Profile
	cmgr  *cm.Manager
	stats struct {
		commits atomic.Uint64
		aborts  atomic.Uint64
	}
	pool sync.Pool
}

// New creates an InvalSTM instance.
func New() *STM {
	s := &STM{}
	mtr := telemetry.M("InvalSTM")
	mtr.SetPolicySource(func() string { return cm.Or(s.cmgr).Policy().Name() })
	src := trace.S("InvalSTM")
	s.pool.New = func() any {
		return &tx{s: s, slot: -1, tel: mtr.Local(), tr: src.Local()}
	}
	return s
}

// SetProfile attaches a critical-path profiler (may be nil).
func (s *STM) SetProfile(p *stm.Profile) { s.prof = p }

// SetManager installs the contention manager transactions run under (nil
// means the shared cm.Default manager). It must be set before any
// transaction runs.
func (s *STM) SetManager(m *cm.Manager) { s.cmgr = m }

// Name implements stm.Algorithm.
func (s *STM) Name() string { return "InvalSTM" }

// Counters implements stm.Algorithm.
func (s *STM) Counters() *spin.Counters { return &s.ctr }

// Stop implements stm.Algorithm; InvalSTM has no background goroutines.
func (s *STM) Stop() {}

// Commits and Aborts report lifetime transaction outcomes.
func (s *STM) Commits() uint64 { return s.stats.commits.Load() }

// Aborts reports the number of aborted attempts.
func (s *STM) Aborts() uint64 { return s.stats.aborts.Load() }

// tx is an InvalSTM transaction descriptor.
type tx struct {
	s          *STM
	slot       int
	holdsClock bool // global lock held (commit in progress)
	writeF     bloom.Filter
	writes     stm.WriteSet
	fn         func(stm.Tx)
	tel        *telemetry.Local
	tr         *trace.Local
}

// Atomic implements stm.Algorithm.
func (s *STM) Atomic(fn func(stm.Tx)) { s.AtomicCtx(nil, fn) }

// AtomicCtx implements stm.AlgorithmCtx: Atomic observing ctx. The registry
// slot is released and the descriptor pooled even when fn (or an armed
// failpoint) panics — a leaked Active slot would shrink the registry for
// the life of the process.
func (s *STM) AtomicCtx(ctx context.Context, fn func(stm.Tx)) error {
	t := s.pool.Get().(*tx)
	t.fn = fn
	t.acquireSlot()
	defer func() {
		t.fn = nil
		t.releaseSlot()
		t.writeF.Clear()
		t.writes.Reset()
		s.pool.Put(t)
	}()
	total := s.prof.Now()
	start := t.tel.Start()
	t.tr.TxStart()
	defer t.tr.TxEnd()
	escalated, err := abort.RunPolicyTxCtx(ctx, nil, cm.Or(s.cmgr), t)
	if escalated {
		t.tr.Escalated()
		t.tel.Escalated()
	}
	if err != nil {
		return err
	}
	s.stats.commits.Add(1)
	t.tel.Commit(start)
	s.prof.AddTotal(total, true)
	return nil
}

// rollback releases the global lock if this attempt died holding it (an
// armed failpoint between lock and publish); nothing was published, so the
// pre-lock timestamp is restored.
func (t *tx) rollback() {
	if t.holdsClock {
		t.holdsClock = false
		t.s.clock.UnlockUnchanged()
	}
}

// acquireSlot claims a registry slot for the transaction's lifetime.
func (t *tx) acquireSlot() {
	var b spin.Backoff
	for {
		for i := range t.s.descs {
			d := &t.s.descs[i]
			if !d.Active.Load() && d.Active.CompareAndSwap(false, true) {
				d.Invalidated.Store(false)
				d.ClearFilter()
				t.slot = i
				return
			}
		}
		b.Wait() // registry full: wait for a slot
	}
}

func (t *tx) releaseSlot() {
	d := &t.s.descs[t.slot]
	d.ClearFilter()
	d.Starved.Store(0) // the next occupant starts unstarved
	d.Active.Store(false)
	t.slot = -1
}

// Attempt implements abort.TxRunner: run the body and commit.
func (t *tx) Attempt() {
	t.fn(t)
	cs := t.tel.Start()
	t.tr.CommitBegin()
	t.commit()
	t.tr.CommitEnd()
	t.tel.CommitPhase(cs)
}

// Rollback implements abort.TxRunner: undo a failed attempt.
func (t *tx) Rollback(r abort.Reason) {
	t.rollback()
	if r == abort.Invalidated {
		t.s.descs[t.slot].Starved.Add(1)
	}
	t.s.stats.aborts.Add(1)
	t.tr.Abort(r)
	t.tel.Abort(r)
}

// Begin implements abort.TxRunner: start one attempt.
func (t *tx) Begin() {
	t.tr.AttemptStart()
	d := &t.s.descs[t.slot]
	d.ClearFilter()
	d.Invalidated.Store(false)
	t.writeF.Clear()
	t.writes.Reset()
}

func (t *tx) desc() *Desc { return &t.s.descs[t.slot] }

// Read implements stm.Tx. The key is published to the read filter before the
// value is read under a stable (even, unchanged) timestamp; a committer that
// later overwrites the cell is thereby guaranteed to see the filter bit and
// invalidate this transaction.
func (t *tx) Read(c *mem.Cell) uint64 {
	if v, ok := t.writes.Get(c); ok {
		return v
	}
	d := t.desc()
	publishRead(d, c.ID())
	var b spin.Backoff
	for {
		ts := t.s.clock.WaitUnlocked(&t.s.ctr)
		v := c.Load()
		if t.s.clock.Load() == ts {
			if d.Invalidated.Load() {
				t.tr.ValidateFail(c.ID())
				abort.Retry(abort.Invalidated)
			}
			return v
		}
		b.Wait()
	}
}

// publishRead sets the filter bits for key in the shared descriptor.
func publishRead(d *Desc, key uint64) {
	var f bloom.Filter
	f.Add(key)
	for i, w := range f {
		if w != 0 {
			d.ReadFilter[i].Or(w)
		}
	}
}

// Write implements stm.Tx; writes are buffered and recorded in the write
// filter used to invalidate conflicting readers at commit.
func (t *tx) Write(c *mem.Cell, v uint64) {
	t.writeF.Add(c.ID())
	t.writes.Put(c, v)
}

// commit publishes the redo log under the global lock and invalidates every
// other in-flight transaction whose read filter intersects the write set.
func (t *tx) commit() {
	d := t.desc()
	if t.writes.Len() == 0 {
		if d.Invalidated.Load() {
			t.tr.ValidateFail(0)
			abort.Retry(abort.Invalidated)
		}
		return
	}
	start := t.s.prof.Now()
	t.s.clock.Lock(&t.s.ctr)
	t.holdsClock = true
	t.tr.Lock(clockTraceKey)
	fpCommitLocked.Hit()
	if d.Invalidated.Load() {
		t.holdsClock = false
		t.s.clock.Unlock()
		t.tr.Unlock(clockTraceKey)
		t.s.prof.AddCommit(start)
		t.tr.ValidateFail(0)
		abort.Retry(abort.Invalidated)
	}
	// First pass (before publishing): find the victims, and let the
	// contention manager defer this commit if one of them is starving.
	// Deference is suspended while a transaction runs in serial mode: a
	// starving victim paused at the gate can never clear its own starvation,
	// so deferring to it would stall the escalated committer forever.
	mine := d.Starved.Load()
	serial := cm.SerialActive()
	var victims []*Desc
	for i := range t.s.descs {
		od := &t.s.descs[i]
		if i == t.slot || !od.Active.Load() || !od.IntersectsWrite(&t.writeF) {
			continue
		}
		if !serial && ShouldDefer(od, i, mine, t.slot) {
			t.holdsClock = false
			t.s.clock.Unlock()
			t.tr.Unlock(clockTraceKey)
			t.s.prof.AddCommit(start)
			t.tr.NoteKey(0)
			abort.Retry(abort.Invalidated)
		}
		victims = append(victims, od)
	}
	t.writes.Publish()
	for _, od := range victims {
		od.Invalidated.Store(true)
	}
	t.s.clock.Unlock()
	t.holdsClock = false
	t.tr.Unlock(clockTraceKey)
	t.s.prof.AddCommit(start)
}

var _ stm.Algorithm = (*STM)(nil)
