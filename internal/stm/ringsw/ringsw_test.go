package ringsw

import (
	"sync"
	"testing"

	"repro/internal/mem"
	"repro/internal/stm"
)

func TestReadYourOwnWrites(t *testing.T) {
	s := New()
	c := mem.NewCell(1)
	s.Atomic(func(tx stm.Tx) {
		tx.Write(c, 2)
		if tx.Read(c) != 2 {
			t.Error("read-after-write must see the buffered value")
		}
	})
	if c.Load() != 2 {
		t.Fatal("commit did not publish")
	}
}

func TestRingEntriesRecordCommits(t *testing.T) {
	s := New()
	c := mem.NewCell(0)
	for i := uint64(1); i <= 3; i++ {
		s.Atomic(func(tx stm.Tx) { tx.Write(c, i) })
	}
	// Three write commits advance the logical clock by 6 and leave slots
	// 1..3 stamped with their commit timestamps.
	if ts := s.clock.Load(); ts != 6 {
		t.Fatalf("clock = %d, want 6", ts)
	}
	for e := uint64(2); e <= 6; e += 2 {
		sl := &s.ring[(e/2)%ringSize]
		if sl.ts.Load() != e {
			t.Fatalf("ring slot for ts %d holds %d", e, sl.ts.Load())
		}
	}
}

func TestBloomConflictAbortsReader(t *testing.T) {
	s := New()
	c := mem.NewCell(0)
	started := make(chan struct{})
	release := make(chan struct{})
	var wg sync.WaitGroup
	attempts := 0
	wg.Add(1)
	go func() {
		defer wg.Done()
		s.Atomic(func(tx stm.Tx) {
			attempts++
			tx.Read(c)
			if attempts == 1 {
				close(started)
				<-release
				tx.Read(c) // ring moved over our filter: must retry
			}
		})
	}()
	<-started
	s.Atomic(func(tx stm.Tx) { tx.Write(c, 5) })
	close(release)
	wg.Wait()
	if attempts != 2 {
		t.Fatalf("attempts = %d, want 2 (bloom conflict)", attempts)
	}
}

func TestDisjointReaderSurvivesCommits(t *testing.T) {
	s := New()
	hot, cold := mem.NewCell(0), mem.NewCell(7)
	started := make(chan struct{})
	release := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	attempts := 0
	go func() {
		defer wg.Done()
		s.Atomic(func(tx stm.Tx) {
			attempts++
			if v := tx.Read(cold); v != 7 {
				t.Errorf("cold = %d, want 7", v)
			}
			if attempts == 1 {
				close(started)
				<-release
			}
			tx.Read(cold)
		})
	}()
	<-started
	s.Atomic(func(tx stm.Tx) { tx.Write(hot, 5) })
	close(release)
	wg.Wait()
	// The reader's filter does not intersect the commit filter, so the
	// first attempt should have survived (bloom false positives permitting).
	if attempts > 2 {
		t.Fatalf("attempts = %d; disjoint reader retried too often", attempts)
	}
}
