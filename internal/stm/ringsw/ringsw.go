// Package ringsw implements the single-writer variant of RingSTM [Spear et
// al., SPAA 2008]: commits append a bloom filter of the write set to a
// global ring, and readers validate by intersecting their read filter with
// the ring entries that committed after their snapshot. RingSW is one of
// the four algorithms in the Chapter 5 microbenchmark comparison.
//
// Logical time is the version of the single writer lock (as in NOrec), so a
// ring entry committed at even timestamp ts occupies slot (ts/2) mod ring
// size. Readers that fall more than a ring behind abort on overflow.
package ringsw

import (
	"context"
	"sync"
	"sync/atomic"

	"repro/internal/abort"
	"repro/internal/bloom"
	"repro/internal/chaos/failpoint"
	"repro/internal/cm"
	"repro/internal/mem"
	"repro/internal/spin"
	"repro/internal/stm"
	"repro/internal/telemetry"
	"repro/internal/trace"
)

// fpCommitLocked fires with the writer lock held, before the ring slot is
// touched or anything is published; recovery must restore the pre-lock
// timestamp so the ring and clock stay consistent.
var fpCommitLocked = failpoint.New("ringsw.commit.locked")

// ringSize is the number of retained commit filters.
const ringSize = 1024

// slot is one ring entry: the commit timestamp and the bloom filter of the
// committed write set. Words are atomic so concurrent overwrite on
// wraparound is race-free; readers detect reuse through the ts check.
type slot struct {
	ts     atomic.Uint64
	filter [bloom.Words]atomic.Uint64
}

// STM is a RingSW instance.
type STM struct {
	clock spin.SeqLock
	ring  [ringSize]slot
	ctr   spin.Counters
	prof  *stm.Profile
	cmgr  *cm.Manager
	stats struct {
		commits atomic.Uint64
		aborts  atomic.Uint64
	}
	pool sync.Pool
}

// New creates a RingSW instance.
func New() *STM {
	s := &STM{}
	mtr := telemetry.M("RingSW")
	mtr.SetPolicySource(func() string { return cm.Or(s.cmgr).Policy().Name() })
	src := trace.S("RingSW")
	s.pool.New = func() any { return &tx{s: s, tel: mtr.Local(), tr: src.Local()} }
	return s
}

// SetProfile attaches a critical-path profiler (may be nil).
func (s *STM) SetProfile(p *stm.Profile) { s.prof = p }

// SetManager installs the contention manager transactions run under (nil
// means the shared cm.Default manager). It must be set before any
// transaction runs.
func (s *STM) SetManager(m *cm.Manager) { s.cmgr = m }

// Name implements stm.Algorithm.
func (s *STM) Name() string { return "RingSW" }

// Counters implements stm.Algorithm.
func (s *STM) Counters() *spin.Counters { return &s.ctr }

// Stop implements stm.Algorithm; RingSW has no background goroutines.
func (s *STM) Stop() {}

// Commits and Aborts report lifetime transaction outcomes.
func (s *STM) Commits() uint64 { return s.stats.commits.Load() }

// Aborts reports the number of aborted attempts.
func (s *STM) Aborts() uint64 { return s.stats.aborts.Load() }

// tx is a RingSW transaction descriptor.
type tx struct {
	s          *STM
	snapshot   uint64
	holdsClock bool // writer lock held (commit in progress)
	readF      bloom.Filter
	writeF     bloom.Filter
	writes     stm.WriteSet
	fn         func(stm.Tx)
	tel        *telemetry.Local
	tr         *trace.Local
}

// Atomic implements stm.Algorithm.
func (s *STM) Atomic(fn func(stm.Tx)) { s.AtomicCtx(nil, fn) }

// AtomicCtx implements stm.AlgorithmCtx: Atomic observing ctx. The
// descriptor returns to its pool even when fn (or an armed failpoint)
// panics — the rollback path has already released the writer lock by then.
func (s *STM) AtomicCtx(ctx context.Context, fn func(stm.Tx)) error {
	t := s.pool.Get().(*tx)
	t.fn = fn
	defer func() {
		t.fn = nil
		t.readF.Clear()
		t.writeF.Clear()
		t.writes.Reset()
		s.pool.Put(t)
	}()
	total := s.prof.Now()
	start := t.tel.Start()
	t.tr.TxStart()
	defer t.tr.TxEnd()
	escalated, err := abort.RunPolicyTxCtx(ctx, nil, cm.Or(s.cmgr), t)
	if escalated {
		t.tel.Escalated()
		t.tr.Escalated()
	}
	if err != nil {
		return err
	}
	s.stats.commits.Add(1)
	t.tel.Commit(start)
	s.prof.AddTotal(total, true)
	return nil
}

// rollback releases the writer lock if this attempt died holding it. The
// ring slot was not yet touched and nothing was published, so restoring the
// pre-lock timestamp leaves readers' view unchanged.
func (t *tx) rollback() {
	if t.holdsClock {
		t.holdsClock = false
		t.s.clock.UnlockUnchanged()
	}
}

// Attempt implements abort.TxRunner: run the body and commit.
func (t *tx) Attempt() {
	t.fn(t)
	cs := t.tel.Start()
	t.tr.CommitBegin()
	t.commit()
	t.tr.CommitEnd()
	t.tel.CommitPhase(cs)
}

// Rollback implements abort.TxRunner: undo a failed attempt.
func (t *tx) Rollback(r abort.Reason) {
	t.rollback()
	t.s.stats.aborts.Add(1)
	t.tel.Abort(r)
	t.tr.Abort(r)
}

// Begin implements abort.TxRunner: start one attempt.
func (t *tx) Begin() {
	t.tr.AttemptStart()
	t.readF.Clear()
	t.writeF.Clear()
	t.writes.Reset()
	t.snapshot = t.s.clock.WaitUnlocked(&t.s.ctr)
}

// Read implements stm.Tx: record the key in the read filter, read the value,
// and re-validate against the ring while the logical clock moves.
func (t *tx) Read(c *mem.Cell) uint64 {
	if v, ok := t.writes.Get(c); ok {
		return v
	}
	t.readF.Add(c.ID())
	v := c.Load()
	for t.snapshot != t.s.clock.Load() {
		t.validateRing()
		v = c.Load()
	}
	return v
}

// Write implements stm.Tx; writes are buffered and recorded in the write
// filter for publication on the ring.
func (t *tx) Write(c *mem.Cell, v uint64) {
	t.writeF.Add(c.ID())
	t.writes.Put(c, v)
}

// validateRing intersects the read filter with every ring entry newer than
// the snapshot, aborting on a hit or on ring overflow, then advances the
// snapshot to a quiescent timestamp.
func (t *tx) validateRing() {
	start := t.s.prof.Now()
	defer t.s.prof.AddValidation(start)
	for {
		ts := t.s.clock.WaitUnlocked(&t.s.ctr)
		if ts == t.snapshot {
			return
		}
		if (ts-t.snapshot)/2 > ringSize {
			abort.Retry(abort.Conflict) // fell a full ring behind
		}
		for e := t.snapshot + 2; e <= ts; e += 2 {
			sl := &t.s.ring[(e/2)%ringSize]
			if sl.ts.Load() != e {
				abort.Retry(abort.Conflict) // slot reused under us
			}
			if t.intersectsSlot(sl) {
				// Bloom intersection cannot name the cell; the ring slot's
				// commit timestamp is the closest attribution available.
				t.tr.ValidateFail(0)
				abort.Retry(abort.Conflict)
			}
			if sl.ts.Load() != e {
				abort.Retry(abort.Conflict)
			}
		}
		if t.s.clock.Load() == ts {
			t.snapshot = ts
			t.tr.Validated()
			return
		}
	}
}

// intersectsSlot reports whether the transaction's read filter shares a bit
// with the slot's commit filter.
func (t *tx) intersectsSlot(sl *slot) bool {
	for i := range t.readF {
		if t.readF[i]&sl.filter[i].Load() != 0 {
			return true
		}
	}
	return false
}

// commit acquires the writer lock (re-validating on contention), appends the
// write filter to the ring, publishes the redo log, and releases the lock.
func (t *tx) commit() {
	if t.writes.Len() == 0 {
		return
	}
	start := t.s.prof.Now()
	for !t.s.clock.TryLock(t.snapshot) {
		t.s.ctr.IncCAS()
		t.s.prof.AddCommit(start)
		t.validateRing()
		start = t.s.prof.Now()
	}
	t.holdsClock = true
	fpCommitLocked.Hit()
	commitTS := t.snapshot + 2
	sl := &t.s.ring[(commitTS/2)%ringSize]
	sl.ts.Store(0) // invalidate slot while its filter is rewritten
	for i := range t.writeF {
		sl.filter[i].Store(t.writeF[i])
	}
	sl.ts.Store(commitTS)
	t.writes.Publish()
	t.s.clock.Unlock()
	t.holdsClock = false
	t.s.prof.AddCommit(start)
}

var _ stm.Algorithm = (*STM)(nil)
