package tml

import (
	"testing"

	"repro/internal/abort"
	"repro/internal/mem"
	"repro/internal/stm"
)

func TestWriterExcludesReaders(t *testing.T) {
	s := New()
	c := mem.NewCell(0)
	s.Atomic(func(tx stm.Tx) {
		tx.Write(c, 1)
		// In-place write is already visible to this (writer) transaction.
		if tx.Read(c) != 1 {
			t.Error("writer must read its own in-place write")
		}
	})
	if c.Load() != 1 {
		t.Fatal("write lost")
	}
}

func TestExplicitAbortRollsBackInPlaceWrites(t *testing.T) {
	s := New()
	a, b := mem.NewCell(10), mem.NewCell(20)
	attempts := 0
	s.Atomic(func(tx stm.Tx) {
		attempts++
		tx.Write(a, 11)
		tx.Write(b, 21)
		if attempts == 1 {
			// Mid-transaction the eager writes are visible...
			if a.Load() != 11 || b.Load() != 21 {
				t.Error("TML writes should be eager")
			}
			abort.Retry(abort.Explicit)
		}
	})
	if attempts != 2 {
		t.Fatalf("attempts = %d, want 2", attempts)
	}
	if a.Load() != 11 || b.Load() != 21 {
		t.Fatal("retry should have re-applied the writes")
	}
}

func TestUndoRestoresExactValues(t *testing.T) {
	s := New()
	c := mem.NewCell(100)
	attempts := 0
	s.Atomic(func(tx stm.Tx) {
		attempts++
		if attempts == 1 {
			tx.Write(c, 1)
			tx.Write(c, 2)
			abort.Retry(abort.Explicit)
		}
		// Second attempt: the cell must have been restored to 100 before
		// this attempt began.
		if got := tx.Read(c); got != 100 {
			t.Errorf("cell = %d after rollback, want 100", got)
		}
	})
}

func TestAbortStats(t *testing.T) {
	s := New()
	n := 0
	s.Atomic(func(tx stm.Tx) {
		n++
		if n == 1 {
			abort.Retry(abort.Explicit)
		}
	})
	if s.Aborts() != 1 || s.Commits() != 1 {
		t.Fatalf("aborts=%d commits=%d, want 1,1", s.Aborts(), s.Commits())
	}
}
