package tml_test

import (
	"testing"

	"repro/internal/lincheck"
	"repro/internal/stm/tml"
)

// TestOpacityTML records a contended transactional workload and checks
// that some commit order of the committed transactions explains every read,
// respects real-time order, and leaves each aborted attempt with a
// consistent view (see internal/lincheck).
func TestOpacityTML(t *testing.T) {
	s := tml.New()
	defer s.Stop()
	cfg := lincheck.DefaultSTMConfig(103)
	if testing.Short() {
		cfg = cfg.Scaled(2)
	}
	lincheck.StressSTM(t, s, cfg)
}
