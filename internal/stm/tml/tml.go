// Package tml implements TML (Transactional Mutex Lock) [Dalessandro et
// al., EuroPar 2010]: the minimal STM the paper cites as the inspiration for
// OTB's semi-optimistic priority queue. Readers run lock-free against a
// global sequence lock; the first write upgrades the transaction to the
// single writer, which then executes in place.
package tml

import (
	"context"
	"sync"
	"sync/atomic"

	"repro/internal/abort"
	"repro/internal/chaos/failpoint"
	"repro/internal/cm"
	"repro/internal/mem"
	"repro/internal/spin"
	"repro/internal/stm"
	"repro/internal/telemetry"
	"repro/internal/trace"
)

// fpCommitLocked fires at writer commit, with the global lock held and all
// writes already in place; recovery must replay the undo log and release.
var fpCommitLocked = failpoint.New("tml.commit.locked")

// STM is a TML instance.
type STM struct {
	clock spin.SeqLock
	ctr   spin.Counters
	prof  *stm.Profile
	cmgr  *cm.Manager
	stats struct {
		commits atomic.Uint64
		aborts  atomic.Uint64
	}
	pool sync.Pool
}

// New creates a TML instance.
func New() *STM {
	s := &STM{}
	mtr := telemetry.M("TML")
	mtr.SetPolicySource(func() string { return cm.Or(s.cmgr).Policy().Name() })
	src := trace.S("TML")
	s.pool.New = func() any { return &tx{s: s, tel: mtr.Local(), tr: src.Local()} }
	return s
}

// SetProfile attaches a critical-path profiler (may be nil).
func (s *STM) SetProfile(p *stm.Profile) { s.prof = p }

// SetManager installs the contention manager transactions run under (nil
// means the shared cm.Default manager). It must be set before any
// transaction runs.
func (s *STM) SetManager(m *cm.Manager) { s.cmgr = m }

// Name implements stm.Algorithm.
func (s *STM) Name() string { return "TML" }

// Counters implements stm.Algorithm.
func (s *STM) Counters() *spin.Counters { return &s.ctr }

// Stop implements stm.Algorithm; TML has no background goroutines.
func (s *STM) Stop() {}

// Commits and Aborts report lifetime transaction outcomes.
func (s *STM) Commits() uint64 { return s.stats.commits.Load() }

// Aborts reports the number of aborted attempts.
func (s *STM) Aborts() uint64 { return s.stats.aborts.Load() }

// tx is a TML transaction descriptor. Writers keep an undo log so that an
// explicit user abort can roll back the in-place writes (plain TML writers
// are irrevocable; the undo log generalizes that without changing the
// conflict behaviour).
type tx struct {
	s        *STM
	snapshot uint64
	writer   bool
	undo     []stm.WriteEntry
	fn       func(stm.Tx)
	tel      *telemetry.Local
	tr       *trace.Local
}

// Atomic implements stm.Algorithm.
func (s *STM) Atomic(fn func(stm.Tx)) { s.AtomicCtx(nil, fn) }

// AtomicCtx implements stm.AlgorithmCtx: Atomic observing ctx. The
// descriptor returns to its pool even when fn (or an armed failpoint)
// panics — the rollback path has already undone in-place writes and
// released the global lock by then.
func (s *STM) AtomicCtx(ctx context.Context, fn func(stm.Tx)) error {
	t := s.pool.Get().(*tx)
	t.fn = fn
	defer func() {
		t.fn = nil
		t.undo = t.undo[:0]
		s.pool.Put(t)
	}()
	total := s.prof.Now()
	start := t.tel.Start()
	t.tr.TxStart()
	defer t.tr.TxEnd()
	escalated, err := abort.RunPolicyTxCtx(ctx, nil, cm.Or(s.cmgr), t)
	if escalated {
		t.tel.Escalated()
		t.tr.Escalated()
	}
	if err != nil {
		return err
	}
	s.stats.commits.Add(1)
	t.tel.Commit(start)
	s.prof.AddTotal(total, true)
	return nil
}

// Attempt implements abort.TxRunner: run the body and commit.
func (t *tx) Attempt() {
	t.fn(t)
	cs := t.tel.Start()
	t.tr.CommitBegin()
	t.commit()
	t.tr.CommitEnd()
	t.tel.CommitPhase(cs)
}

// Rollback implements abort.TxRunner: undo a failed attempt.
func (t *tx) Rollback(r abort.Reason) {
	t.rollback()
	t.s.stats.aborts.Add(1)
	t.tel.Abort(r)
	t.tr.Abort(r)
}

// Begin implements abort.TxRunner: start one attempt.
func (t *tx) Begin() {
	t.tr.AttemptStart()
	t.writer = false
	t.undo = t.undo[:0]
	t.snapshot = t.s.clock.WaitUnlocked(&t.s.ctr)
}

// Read implements stm.Tx. Readers abort if any writer committed (or is
// active) since their snapshot; the writer reads directly.
func (t *tx) Read(c *mem.Cell) uint64 {
	v := c.Load()
	if !t.writer && t.s.clock.Load() != t.snapshot {
		t.tr.ValidateFail(c.ID())
		abort.Retry(abort.Conflict)
	}
	return v
}

// Write implements stm.Tx. The first write acquires the global lock; all
// writes are performed in place under it.
func (t *tx) Write(c *mem.Cell, v uint64) {
	if !t.writer {
		if !t.s.clock.TryLock(t.snapshot) {
			t.s.ctr.IncCAS()
			t.tr.LockBusy(c.ID())
			abort.Retry(abort.LockBusy)
		}
		t.tr.Lock(c.ID())
		t.writer = true
	}
	t.undo = append(t.undo, stm.WriteEntry{Cell: c, Val: c.Load()})
	c.Store(v)
}

func (t *tx) commit() {
	if t.writer {
		fpCommitLocked.Hit()
		start := t.s.prof.Now()
		t.s.clock.Unlock()
		t.s.prof.AddCommit(start)
		t.writer = false
	}
}

// rollback restores in-place writes (reverse order) and releases the lock.
func (t *tx) rollback() {
	if !t.writer {
		return
	}
	for i := len(t.undo) - 1; i >= 0; i-- {
		t.undo[i].Cell.Store(t.undo[i].Val)
	}
	t.s.clock.Unlock()
	t.writer = false
}

var _ stm.Algorithm = (*STM)(nil)
