package stm_test

import (
	"sync"
	"testing"

	"repro/internal/mem"
	"repro/internal/stm"
	"repro/internal/stm/glock"
	"repro/internal/stm/invalstm"
	"repro/internal/stm/norec"
	"repro/internal/stm/ringsw"
	"repro/internal/stm/tl2"
	"repro/internal/stm/tml"
)

// algorithms returns fresh instances of every STM under test.
func algorithms() []stm.Algorithm {
	return []stm.Algorithm{
		norec.New(), tl2.New(), tl2.NewSharded(), tml.New(), ringsw.New(),
		invalstm.New(), glock.New(),
	}
}

// stressIters scales a stress-test iteration count down under -short (the
// CI race job) while keeping full coverage in the default run.
func stressIters(full int) int {
	if testing.Short() {
		return full / 5
	}
	return full
}

func TestCounterIncrement(t *testing.T) {
	for _, alg := range algorithms() {
		t.Run(alg.Name(), func(t *testing.T) {
			defer alg.Stop()
			const workers = 8
			each := stressIters(250)
			c := mem.NewCell(0)
			var wg sync.WaitGroup
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for i := 0; i < each; i++ {
						alg.Atomic(func(tx stm.Tx) {
							tx.Write(c, tx.Read(c)+1)
						})
					}
				}()
			}
			wg.Wait()
			if got := c.Load(); got != uint64(workers*each) {
				t.Fatalf("counter = %d, want %d", got, workers*each)
			}
		})
	}
}

func TestBankTransferInvariant(t *testing.T) {
	for _, alg := range algorithms() {
		t.Run(alg.Name(), func(t *testing.T) {
			defer alg.Stop()
			const accounts = 16
			const initial = 1000
			const workers = 8
			each := stressIters(200)
			cells := make([]*mem.Cell, accounts)
			for i := range cells {
				cells[i] = mem.NewCell(initial)
			}
			var wg sync.WaitGroup
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func(seed int) {
					defer wg.Done()
					for i := 0; i < each; i++ {
						from := (seed + i) % accounts
						to := (seed + i*7 + 1) % accounts
						if from == to {
							to = (to + 1) % accounts
						}
						alg.Atomic(func(tx stm.Tx) {
							a := tx.Read(cells[from])
							b := tx.Read(cells[to])
							if a == 0 {
								return
							}
							tx.Write(cells[from], a-1)
							tx.Write(cells[to], b+1)
						})
					}
				}(w)
			}
			wg.Wait()
			var total uint64
			for _, c := range cells {
				total += c.Load()
			}
			if total != accounts*initial {
				t.Fatalf("total = %d, want %d (money conserved)", total, accounts*initial)
			}
		})
	}
}

// TestReadConsistency checks opacity-style snapshot consistency: two cells
// always updated together must never be observed unequal.
func TestReadConsistency(t *testing.T) {
	for _, alg := range algorithms() {
		t.Run(alg.Name(), func(t *testing.T) {
			defer alg.Stop()
			a, b := mem.NewCell(0), mem.NewCell(0)
			stop := make(chan struct{})
			var wg sync.WaitGroup
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := uint64(1); ; i++ {
					select {
					case <-stop:
						return
					default:
					}
					alg.Atomic(func(tx stm.Tx) {
						tx.Write(a, i)
						tx.Write(b, i)
					})
				}
			}()
			for i := 0; i < stressIters(2000); i++ {
				alg.Atomic(func(tx stm.Tx) {
					va := tx.Read(a)
					vb := tx.Read(b)
					if va != vb {
						t.Errorf("torn read: a=%d b=%d", va, vb)
					}
				})
			}
			close(stop)
			wg.Wait()
		})
	}
}

func TestWriteSetReadAfterWrite(t *testing.T) {
	var ws stm.WriteSet
	cells := make([]*mem.Cell, 20)
	for i := range cells {
		cells[i] = mem.NewCell(0)
		ws.Put(cells[i], uint64(i))
	}
	// Force past the map threshold and overwrite.
	ws.Put(cells[3], 333)
	if v, ok := ws.Get(cells[3]); !ok || v != 333 {
		t.Fatalf("Get = %d,%v; want 333,true", v, ok)
	}
	if _, ok := ws.Get(mem.NewCell(0)); ok {
		t.Fatal("Get of unwritten cell should miss")
	}
	if ws.Len() != 20 {
		t.Fatalf("Len = %d, want 20", ws.Len())
	}
	ws.Publish()
	if cells[3].Load() != 333 || cells[7].Load() != 7 {
		t.Fatal("Publish did not store buffered values")
	}
	ws.Reset()
	if ws.Len() != 0 {
		t.Fatal("Reset should empty the set")
	}
}

func TestProfileAccounting(t *testing.T) {
	s := norec.New()
	prof := &stm.Profile{}
	s.SetProfile(prof)
	c := mem.NewCell(0)
	for i := 0; i < 50; i++ {
		s.Atomic(func(tx stm.Tx) { tx.Write(c, tx.Read(c)+1) })
	}
	snap := prof.Snapshot()
	if snap.Commits != 50 {
		t.Fatalf("Commits = %d, want 50", snap.Commits)
	}
	if snap.TotalNS <= 0 {
		t.Fatal("TotalNS should be positive")
	}
	if snap.OtherNS() < 0 {
		t.Fatal("OtherNS must be non-negative")
	}
}
