//go:build !race

package race

// Enabled is true when the race detector is compiled in.
const Enabled = false
