// Package race reports whether the binary was built with the race
// detector. The AllocFree tests skip under it: race-mode sync.Pool
// deliberately drops Puts at random to widen interleaving coverage, so
// pooled descriptors re-allocate and AllocsPerRun can never reach zero.
package race
