package cm

import (
	"math/rand/v2"
	"runtime"
	"time"

	"repro/internal/abort"
)

// Policy paces the retries of one transaction. Wait is called off the
// transactional fast path (only after an abort), so policies may be as
// expensive as they like; they must be safe for concurrent use and carry no
// per-transaction state — the consecutive-abort count n is passed in.
type Policy interface {
	// Name is the policy's registry key ("backoff", "polite", ...).
	Name() string
	// Wait blocks between the n-th consecutive aborted attempt (n >= 1) of
	// one transaction and its next attempt; r is the abort's reason.
	Wait(n int, r abort.Reason)
	// LockAttempts bounds the lock-acquisition retries of timeout-based
	// runtimes (pessimistic boosting's abstract locks): exceeding it aborts
	// with abort.Timeout. More patient policies allow more attempts.
	LockAttempts() int
}

// spinFor busy-waits for iters bounded iterations and then yields, the same
// discipline as spin.Backoff: every wait reaches the scheduler, so pacing
// can never starve the conflicting transaction on GOMAXPROCS=1.
func spinFor(iters uint) {
	if iters > maxSpinIters {
		iters = maxSpinIters
	}
	for i := uint(0); i < iters; i++ {
		spinHint()
	}
	runtime.Gosched()
}

// maxSpinIters bounds the busy iterations between yields (matches
// spin.maxBackoffIters).
const maxSpinIters = 1 << 8

// spinHint is a tiny delay standing in for a PAUSE instruction.
//
//go:noinline
func spinHint() {}

// exp2 returns 1<<n saturated at 1<<lim.
func exp2(n, lim int) uint {
	if n > lim {
		n = lim
	}
	if n < 0 {
		n = 0
	}
	return uint(1) << n
}

// ---------------------------------------------------------------------------
// Backoff — the default policy

// backoffPolicy reproduces the repository's historical behaviour: yielding
// exponential backoff, doubling the bounded spin window on every abort.
type backoffPolicy struct{}

func (backoffPolicy) Name() string { return "backoff" }

func (backoffPolicy) Wait(n int, _ abort.Reason) {
	spinFor(exp2(n-1, 8))
}

func (backoffPolicy) LockAttempts() int { return 64 }

// ---------------------------------------------------------------------------
// Polite

// politePolicy backs off harder than the default and randomizes: the wait
// window grows exponentially with jitter, and once a transaction has aborted
// many times in a row it sleeps instead of spinning, surrendering the
// processor to whoever keeps winning. Politeness trades personal latency for
// system throughput under heavy interference (Scherer & Scott's Polite
// manager).
type politePolicy struct{}

func (politePolicy) Name() string { return "polite" }

func (politePolicy) Wait(n int, _ abort.Reason) {
	if n > politeSleepThreshold {
		// Long-suffering losers get fully out of the way. The sleep grows
		// linearly and is capped so a doomed transaction still reaches its
		// retry budget quickly.
		d := time.Duration(n-politeSleepThreshold) * politeSleepUnit
		if d > politeSleepCap {
			d = politeSleepCap
		}
		time.Sleep(d)
		return
	}
	// Randomized exponential window: jitter desynchronizes transactions that
	// aborted on the same conflict and would otherwise collide again.
	window := exp2(n, 8)
	spinFor(window/2 + uint(rand.Uint64N(uint64(window/2+1))))
}

// politeSleepThreshold is the consecutive-abort count past which Polite
// sleeps rather than spins; politeSleepUnit/Cap bound the sleep.
const (
	politeSleepThreshold = 6
	politeSleepUnit      = 10 * time.Microsecond
	politeSleepCap       = 200 * time.Microsecond
)

func (politePolicy) LockAttempts() int { return 256 }

// ---------------------------------------------------------------------------
// Karma

// karmaPolicy accumulates priority with investment: every aborted attempt is
// work the transaction has already sunk, so the longer it has been trying,
// the *less* it waits — its karma entitles it to the next slot. Young
// transactions back off the most, clearing the track for old ones. This is
// the within-transaction reading of Scherer & Scott's Karma manager (the
// enemy's priority is unknowable here, so waits derate against the
// transaction's own seniority instead).
type karmaPolicy struct{}

func (karmaPolicy) Name() string { return "karma" }

func (karmaPolicy) Wait(n int, _ abort.Reason) {
	shift := n
	if shift > 8 {
		shift = 8
	}
	spinFor(maxSpinIters >> shift)
}

func (karmaPolicy) LockAttempts() int { return 128 }

// ---------------------------------------------------------------------------
// Aggressive

// aggressivePolicy never waits: the transaction retries immediately (with
// the mandatory scheduler yield). Best when conflicts are short and rare —
// under real contention it burns the most retries and reaches the serial
// fallback soonest, which is sometimes exactly the intent.
type aggressivePolicy struct{}

func (aggressivePolicy) Name() string { return "aggressive" }

func (aggressivePolicy) Wait(int, abort.Reason) { runtime.Gosched() }

func (aggressivePolicy) LockAttempts() int { return 8 }

// Exported policy singletons; all are stateless and shareable.
var (
	Backoff    Policy = backoffPolicy{}
	Polite     Policy = politePolicy{}
	Karma      Policy = karmaPolicy{}
	Aggressive Policy = aggressivePolicy{}
)

// policies is the name registry backing Lookup and the -cm flags.
var policies = map[string]Policy{
	Backoff.Name():    Backoff,
	Polite.Name():     Polite,
	Karma.Name():      Karma,
	Aggressive.Name(): Aggressive,
}

// Lookup returns the policy registered under name.
func Lookup(name string) (Policy, bool) {
	p, ok := policies[name]
	return p, ok
}

// Names returns the registered policy names, sorted.
func Names() []string {
	return []string{
		Aggressive.Name(), Backoff.Name(), Karma.Name(), Polite.Name(),
	}
}
