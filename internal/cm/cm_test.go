package cm

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/abort"
)

func TestLookupAndNames(t *testing.T) {
	for _, name := range Names() {
		p, ok := Lookup(name)
		if !ok {
			t.Fatalf("Lookup(%q) failed", name)
		}
		if p.Name() != name {
			t.Fatalf("policy %q reports name %q", name, p.Name())
		}
		if p.LockAttempts() <= 0 {
			t.Fatalf("policy %q has non-positive LockAttempts", name)
		}
	}
	if _, ok := Lookup("nope"); ok {
		t.Fatal("Lookup of unknown policy succeeded")
	}
}

// TestPoliciesWaitReturns drives every policy across the abort-count range;
// waits must return promptly (bounded spins/sleeps) for every n.
func TestPoliciesWaitReturns(t *testing.T) {
	for _, name := range Names() {
		p, _ := Lookup(name)
		start := time.Now()
		for n := 1; n <= 32; n++ {
			p.Wait(n, abort.Conflict)
		}
		if d := time.Since(start); d > 2*time.Second {
			t.Fatalf("policy %q waits too long: %v for 32 aborts", name, d)
		}
	}
}

func TestManagerBudget(t *testing.T) {
	m := New(Aggressive, 3)
	if m.OnAbort(1, abort.Conflict) || m.OnAbort(2, abort.Conflict) {
		t.Fatal("escalated before the budget was exhausted")
	}
	if !m.OnAbort(3, abort.Conflict) {
		t.Fatal("did not escalate at the budget")
	}
	m.SetBudget(-1)
	if m.OnAbort(1000, abort.Conflict) {
		t.Fatal("escalated with escalation disabled")
	}
}

func TestManagerPolicySwap(t *testing.T) {
	m := New(nil, DefaultBudget)
	if got := m.Policy().Name(); got != "backoff" {
		t.Fatalf("nil policy resolved to %q, want backoff", got)
	}
	m.SetPolicy(Karma)
	if got := m.Policy().Name(); got != "karma" {
		t.Fatalf("after SetPolicy, policy = %q, want karma", got)
	}
}

// TestSerialGate checks the escalation protocol: Pause blocks while the
// gate is held and resumes when released, and escalations serialize.
func TestSerialGate(t *testing.T) {
	m := New(Backoff, DefaultBudget)
	m.Escalate()
	if !SerialActive() {
		t.Fatal("gate not active after Escalate")
	}

	released := make(chan struct{})
	paused := make(chan struct{})
	go func() {
		m.Pause() // must block until Release
		select {
		case <-released:
		default:
			t.Error("Pause returned while the serial gate was held")
		}
		close(paused)
	}()

	time.Sleep(10 * time.Millisecond)
	close(released)
	m.Release()
	select {
	case <-paused:
	case <-time.After(5 * time.Second):
		t.Fatal("Pause did not resume after Release")
	}
	if SerialActive() {
		t.Fatal("gate still active after Release")
	}
	if m.Escalations() != 1 {
		t.Fatalf("Escalations = %d, want 1", m.Escalations())
	}
}

// TestEscalationsSerialize runs many concurrent escalations and checks
// mutual exclusion inside the gate.
func TestEscalationsSerialize(t *testing.T) {
	m := New(Aggressive, 1)
	var inside atomic.Int32
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				m.Escalate()
				if n := inside.Add(1); n != 1 {
					t.Errorf("%d transactions inside the serial gate", n)
				}
				inside.Add(-1)
				m.Release()
			}
		}()
	}
	wg.Wait()
	if m.Escalations() != 400 {
		t.Fatalf("Escalations = %d, want 400", m.Escalations())
	}
}

// TestRunPolicyEscalates drives abort.RunPolicy with a manager whose budget
// forces escalation, checking the full loop: budget aborts, then the serial
// retry commits.
func TestRunPolicyEscalates(t *testing.T) {
	const budget = 5
	m := New(Aggressive, budget)
	attempts := 0
	var stats abort.Stats
	escalated := abort.RunPolicy(&stats, m,
		func() {},
		func() {
			attempts++
			if attempts <= budget {
				abort.Retry(abort.Conflict)
			}
			// The escalated attempt must run with the gate held.
			if !SerialActive() {
				t.Error("escalated attempt ran without the serial gate")
			}
		},
		func(abort.Reason) {},
	)
	if !escalated {
		t.Fatal("RunPolicy did not report escalation")
	}
	if attempts != budget+1 {
		t.Fatalf("attempts = %d, want %d", attempts, budget+1)
	}
	if stats.Commits != 1 || stats.Aborts != budget {
		t.Fatalf("stats = %+v, want 1 commit / %d aborts", stats, budget)
	}
	if SerialActive() {
		t.Fatal("serial gate left closed after commit")
	}
}

// TestRunPolicyNoEscalationUnderBudget checks that a transaction that
// commits within its budget never touches the gate.
func TestRunPolicyNoEscalationUnderBudget(t *testing.T) {
	m := New(Backoff, 10)
	attempts := 0
	escalated := abort.RunPolicy(nil, m,
		func() {},
		func() {
			attempts++
			if attempts < 3 {
				abort.Retry(abort.Conflict)
			}
		},
		func(abort.Reason) {},
	)
	if escalated {
		t.Fatal("escalated although the budget was not exhausted")
	}
	if m.Escalations() != 0 {
		t.Fatalf("Escalations = %d, want 0", m.Escalations())
	}
}

func TestConfigure(t *testing.T) {
	old, oldBudget := Default().Policy(), Default().Budget()
	t.Cleanup(func() {
		Default().SetPolicy(old)
		Default().SetBudget(oldBudget)
	})
	if err := Configure("karma", 17); err != nil {
		t.Fatal(err)
	}
	if got := Default().Policy().Name(); got != "karma" {
		t.Fatalf("default policy = %q, want karma", got)
	}
	if got := Default().Budget(); got != 17 {
		t.Fatalf("default budget = %d, want 17", got)
	}
	if err := Configure("bogus", 0); err == nil {
		t.Fatal("Configure accepted an unknown policy")
	}
	if Or(nil) != Default() {
		t.Fatal("Or(nil) != Default()")
	}
	m := New(Polite, 1)
	if Or(m) != m {
		t.Fatal("Or(m) != m")
	}
}

// TestPauseCtxCancellation pins the context contract of PauseCtx while the
// serial gate is held: a dead context must get its error back promptly
// instead of waiting out the escalated transaction, and an open gate must
// short-circuit to nil even when the context is already cancelled (the
// transaction is free to proceed; its own runtime will observe the
// cancellation at the next attempt boundary).
func TestPauseCtxCancellation(t *testing.T) {
	m := New(Backoff, DefaultBudget)

	// Gate open: nil immediately, even with a cancelled context.
	dead, kill := context.WithCancel(context.Background())
	kill()
	if err := m.PauseCtx(dead); err != nil {
		t.Fatalf("PauseCtx with open gate = %v, want nil", err)
	}

	m.Escalate()
	held := true
	defer func() {
		if held {
			m.Release()
		}
	}()

	// Gate held + already-cancelled context: the ctx error, promptly.
	start := time.Now()
	if err := m.PauseCtx(dead); !errors.Is(err, context.Canceled) {
		t.Fatalf("PauseCtx(cancelled) = %v, want context.Canceled", err)
	}
	if d := time.Since(start); d > time.Second {
		t.Fatalf("PauseCtx took %v to notice a dead context", d)
	}

	// Gate held + context that expires while parked: DeadlineExceeded, well
	// before any Release.
	expiring, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	start = time.Now()
	if err := m.PauseCtx(expiring); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("PauseCtx(expiring) = %v, want context.DeadlineExceeded", err)
	}
	if d := time.Since(start); d > 5*time.Second {
		t.Fatalf("PauseCtx blocked %v past its context deadline", d)
	}
	if !SerialActive() {
		t.Fatal("gate should still be held; PauseCtx must not touch it")
	}

	// Gate held + live context: parked until Release, then nil.
	unparked := make(chan error, 1)
	go func() { unparked <- m.PauseCtx(context.Background()) }()
	select {
	case err := <-unparked:
		t.Fatalf("PauseCtx returned %v while the gate was held", err)
	case <-time.After(20 * time.Millisecond):
	}
	m.Release()
	held = false
	select {
	case err := <-unparked:
		if err != nil {
			t.Fatalf("PauseCtx after Release = %v, want nil", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("PauseCtx did not resume after Release")
	}
}
