// Package cm is the contention-management layer shared by every
// transactional runtime in the repository (OTB, the STM algorithms,
// pessimistic boosting, the integration contexts, RTC, RInval and the
// hybrid HTM).
//
// The OTB paper assumes a contention manager exists but never builds one;
// this package supplies the three pieces the rest of the system needs:
//
//  1. Pluggable retry pacing (Policy): how long an aborted transaction
//     waits before its next optimistic attempt. Four policies are provided —
//     the historical yielding exponential backoff (default), Polite, Karma
//     and Aggressive — all registered by name for the cmd binaries' -cm
//     flag and the adaptive tuner.
//  2. A per-transaction retry budget: the number of consecutive aborted
//     attempts after which optimism is declared lost.
//  3. Serial-mode escalation: a transaction over budget acquires the
//     process-wide serial gate and re-runs with every other transaction's
//     *new* attempts blocked at the gate (HTM lock-subscription style,
//     the same discipline as the glock baseline's single mutex). Attempts
//     already in flight finish at most once more, so the escalated
//     transaction competes with a strictly draining set and commits after
//     a bounded number of retries — no workload can livelock the system.
//
// The fast path is one relaxed atomic load per optimistic attempt (the
// serial-gate check); everything else runs only after an abort.
//
// A *Manager implements abort.Manager and is threaded through
// abort.RunPolicy; runtimes default to the shared Default manager and
// accept a custom one through their SetManager methods.
package cm

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/abort"
	"repro/internal/spin"
)

// DefaultBudget is the retry budget managers start with: consecutive
// aborted attempts before serial-mode escalation. It is high enough that
// ordinary contention (which exponential backoff resolves within a handful
// of retries) never escalates, and low enough that a starving transaction
// reaches the guaranteed-progress path in well under a millisecond of
// thrashing.
const DefaultBudget = 64

// serialGate is the process-wide serial-mode gate. It is deliberately
// global rather than per-Manager: transactions from different runtimes can
// share data structures (the integration contexts drive OTB structures
// under an STM), so the progress guarantee must hold across all of them.
//
// Discipline (glock-style, with HTM lock subscription for the fast path):
// the escalated transaction owns mu; active is the subscription flag every
// optimistic attempt checks before starting. In-flight attempts are not
// tracked — they finish their current attempt and then block in Pause — so
// closing the gate is wait-free for the escalating transaction.
var serialGate struct {
	mu     sync.Mutex   // owned by the escalated transaction
	active atomic.Int32 // nonzero while an escalated transaction runs
}

// SerialActive reports whether an escalated transaction currently holds the
// serial gate (exported for tests and monitoring).
func SerialActive() bool { return serialGate.active.Load() != 0 }

// Manager pairs a Policy with a retry budget and the serial-mode gate; it
// implements abort.Manager. Managers are shared: one Manager typically
// serves every transaction of a runtime instance. The zero value is not
// usable; call New.
type Manager struct {
	policy      atomic.Pointer[Policy]
	budget      atomic.Int64
	escalations atomic.Uint64
}

// New creates a Manager with the given policy and retry budget. A nil
// policy means Backoff; budget <= 0 disables escalation (unbounded
// optimistic retries, the pre-contention-management behaviour).
func New(p Policy, budget int) *Manager {
	m := &Manager{}
	if p == nil {
		p = Backoff
	}
	m.policy.Store(&p)
	m.budget.Store(int64(budget))
	return m
}

// Policy returns the manager's current policy.
func (m *Manager) Policy() Policy { return *m.policy.Load() }

// SetPolicy swaps the pacing policy; safe during live traffic (the
// adaptive tuner retunes policies from observed abort rates).
func (m *Manager) SetPolicy(p Policy) {
	if p == nil {
		p = Backoff
	}
	m.policy.Store(&p)
}

// Budget returns the retry budget (<= 0 means escalation disabled).
func (m *Manager) Budget() int { return int(m.budget.Load()) }

// SetBudget changes the retry budget; safe during live traffic.
func (m *Manager) SetBudget(n int) { m.budget.Store(int64(n)) }

// Escalations reports how many transactions this manager escalated to
// serial mode.
func (m *Manager) Escalations() uint64 { return m.escalations.Load() }

// Pause implements abort.Manager: it blocks while an escalated transaction
// runs serially. The fast path — no escalation anywhere — is a single
// relaxed load and a predictable branch.
func (m *Manager) Pause() {
	if serialGate.active.Load() == 0 {
		return
	}
	var b spin.Backoff
	for serialGate.active.Load() != 0 {
		b.Wait()
	}
}

// PauseCtx implements abort.CtxPauser: Pause that gives up with the
// context's error when ctx is cancelled while parked at the serial gate, so
// an abandoned transaction does not wait out an escalated one.
func (m *Manager) PauseCtx(ctx context.Context) error {
	if serialGate.active.Load() == 0 {
		return nil
	}
	var b spin.Backoff
	for serialGate.active.Load() != 0 {
		if err := ctx.Err(); err != nil {
			return err
		}
		b.Wait()
	}
	return nil
}

// OnAbort implements abort.Manager: it paces the retry per the current
// policy and reports whether the budget is exhausted.
func (m *Manager) OnAbort(n int, r abort.Reason) (escalate bool) {
	if budget := m.budget.Load(); budget > 0 && int64(n) >= budget {
		return true
	}
	m.Policy().Wait(n, r)
	return false
}

// Escalate implements abort.Manager: it acquires the process-wide serial
// gate. At most one escalated transaction runs at a time; later escalations
// queue on the gate's mutex.
func (m *Manager) Escalate() {
	serialGate.mu.Lock()
	serialGate.active.Store(1)
	m.escalations.Add(1)
}

// Release implements abort.Manager: it reopens the gate after the
// escalated transaction commits.
func (m *Manager) Release() {
	serialGate.active.Store(0)
	serialGate.mu.Unlock()
}

var (
	_ abort.Manager   = (*Manager)(nil)
	_ abort.CtxPauser = (*Manager)(nil)
)

// defaultMgr is the process-wide manager runtimes fall back to when no
// explicit one is configured. Its policy and budget are retuned in place by
// Configure (the cmd binaries' -cm flag), so runtimes constructed before or
// after the flag is applied behave identically.
var defaultMgr = New(Backoff, DefaultBudget)

// Default returns the shared default manager (Backoff policy,
// DefaultBudget, unless reconfigured via Configure).
func Default() *Manager { return defaultMgr }

// Or returns m, or the shared default manager when m is nil — the one-line
// resolution every runtime uses at transaction start.
func Or(m *Manager) *Manager {
	if m != nil {
		return m
	}
	return defaultMgr
}

// Configure retunes the shared default manager: policy by registry name
// ("" keeps the current policy) and retry budget (0 keeps the current
// budget; negative disables escalation). It backs the -cm and -cm-budget
// flags of cmd/stmbench and cmd/reproduce.
func Configure(policy string, budget int) error {
	if policy != "" {
		p, ok := Lookup(policy)
		if !ok {
			return fmt.Errorf("cm: unknown policy %q (have %v)", policy, Names())
		}
		defaultMgr.SetPolicy(p)
	}
	if budget != 0 {
		defaultMgr.SetBudget(budget)
	}
	return nil
}
