// Command txload drives a txstore server with many concurrent client
// connections and reports throughput, latency percentiles and the retry
// machinery's counters (reconnects, resends, overload sheds). It is the
// many-connection companion of cmd/txstore — point it at a server, crank
// -conns up, and watch admission control and the session retry protocol
// work under load:
//
//	txload -addr localhost:7470 -conns 1000 -duration 10s
//	txload -addr localhost:7470 -conns 200 -writes 50 -ops 4 -deadline 50ms
//
// Every connection holds one session and issues transactions back to back:
// a mix of set adds/removes/contains over -keys keys, -ops operations per
// transaction. Definitive per-request failures (deadline exceeded, aborts)
// are counted, not fatal; transport failures are retried by the client
// library and show up as resends.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"math/rand/v2"
	"os"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/txnet"
)

func main() {
	var (
		addr     = flag.String("addr", "localhost:7470", "txstore server address")
		conns    = flag.Int("conns", 100, "concurrent client connections (one session each)")
		duration = flag.Duration("duration", 5*time.Second, "measurement window")
		writes   = flag.Int("writes", 20, "write percentage (split add/remove)")
		keys     = flag.Int64("keys", 1<<14, "key range")
		opsPerTx = flag.Int("ops", 1, "operations per transaction")
		deadline = flag.Duration("deadline", 0, "per-request deadline (0 = none)")
		seed     = flag.Int64("seed", 1, "workload seed")
	)
	flag.Parse()

	var (
		commits, deadlines, aborted atomic.Uint64
		failed                      atomic.Uint64
	)
	latCh := make(chan []time.Duration, *conns)
	stopCtx, stop := context.WithTimeout(context.Background(), *duration)
	defer stop()

	var clients []*txnet.Client
	var clientsMu sync.Mutex
	var wg sync.WaitGroup
	start := time.Now()
	for i := 0; i < *conns; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c, err := txnet.Dial(*addr, &txnet.ClientOptions{Seed: *seed + int64(i)})
			if err != nil {
				fmt.Fprintf(os.Stderr, "txload: conn %d: %v\n", i, err)
				failed.Add(1)
				return
			}
			defer c.Close()
			clientsMu.Lock()
			clients = append(clients, c)
			clientsMu.Unlock()

			rng := rand.New(rand.NewPCG(uint64(*seed), uint64(i)))
			lats := make([]time.Duration, 0, 4096)
			ops := make([]txnet.Op, *opsPerTx)
			for stopCtx.Err() == nil {
				for j := range ops {
					key := rng.Int64N(*keys)
					switch {
					case rng.IntN(100) >= *writes:
						ops[j] = txnet.Op{Code: txnet.OpContains, Struct: 0, Key: key}
					case rng.IntN(2) == 0:
						ops[j] = txnet.Op{Code: txnet.OpAdd, Struct: 0, Key: key}
					default:
						ops[j] = txnet.Op{Code: txnet.OpRemove, Struct: 0, Key: key}
					}
				}
				ctx := stopCtx
				var cancel context.CancelFunc
				if *deadline > 0 {
					ctx, cancel = context.WithTimeout(stopCtx, *deadline)
				}
				t0 := time.Now()
				_, err := c.Do(ctx, ops)
				if cancel != nil {
					cancel()
				}
				switch {
				case err == nil:
					commits.Add(1)
					lats = append(lats, time.Since(t0))
				case errors.Is(err, txnet.ErrDeadline):
					deadlines.Add(1)
				case errors.Is(err, txnet.ErrAborted):
					aborted.Add(1)
				case stopCtx.Err() != nil:
					// window closed mid-request; not a failure
				default:
					fmt.Fprintf(os.Stderr, "txload: conn %d: %v\n", i, err)
					failed.Add(1)
					latCh <- lats
					return
				}
			}
			latCh <- lats
		}(i)
	}
	wg.Wait()
	elapsed := time.Since(start)
	close(latCh)

	var lats []time.Duration
	for l := range latCh {
		lats = append(lats, l...)
	}
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })

	var reconnects, resends, overloads uint64
	clientsMu.Lock()
	for _, c := range clients {
		st := c.Stats()
		reconnects += st.Reconnects
		resends += st.Resends
		overloads += st.Overloads
	}
	clientsMu.Unlock()

	n := commits.Load()
	fmt.Printf("txload: %d conns, %v window\n", *conns, elapsed.Round(time.Millisecond))
	fmt.Printf("  commits    %12d  (%.0f tx/s)\n", n, float64(n)/elapsed.Seconds())
	fmt.Printf("  deadline   %12d\n", deadlines.Load())
	fmt.Printf("  aborted    %12d\n", aborted.Load())
	fmt.Printf("  failed     %12d\n", failed.Load())
	fmt.Printf("  reconnects %12d\n", reconnects)
	fmt.Printf("  resends    %12d\n", resends)
	fmt.Printf("  overloads  %12d\n", overloads)
	if len(lats) > 0 {
		fmt.Printf("  latency    p50 %v  p99 %v  max %v\n",
			pct(lats, 50), pct(lats, 99), lats[len(lats)-1])
	}
	if failed.Load() > 0 {
		os.Exit(1)
	}
}

// pct reads the p-th percentile from a sorted latency slice.
func pct(sorted []time.Duration, p int) time.Duration {
	idx := len(sorted) * p / 100
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}
