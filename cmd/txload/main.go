// Command txload drives a txstore server with many concurrent client
// connections and reports throughput, latency percentiles and the retry
// machinery's counters (reconnects, resends, overload sheds). It is the
// many-connection companion of cmd/txstore — point it at a server, crank
// -conns up, and watch admission control and the session retry protocol
// work under load:
//
//	txload -addr localhost:7470 -conns 1000 -duration 10s
//	txload -addr localhost:7470 -conns 200 -writes 50 -ops 4 -deadline 50ms
//	txload -addr localhost:7470 -stages                       # live per-stage table
//	txload -addr localhost:7470 -trace-sample 64 \
//	       -server-debug localhost:6060 -trace-out trace.json # cross-process trace
//
// Every connection holds one session and issues transactions back to back:
// a mix of set adds/removes/contains over -keys keys, -ops operations per
// transaction. Definitive per-request failures (deadline exceeded, aborts)
// are counted, not fatal; transport failures are retried by the client
// library and show up as resends.
//
// -stages asks the server to return its per-stage breakdown on every
// response (queue, net, dispatch, admission, execute, wal-append, fsync)
// and prints a live latency table once a second. -trace-sample N samples
// 1 in N requests into the flight recorder with wire-propagated trace ids;
// -trace-out writes the recording as Perfetto trace-event JSON, and
// -server-debug additionally fetches the server's recording and merges the
// two into one timeline, so a traced commit renders with its client,
// server and WAL-fsync spans under a single trace id.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"math/rand/v2"
	"net/http"
	"os"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/telemetry"
	"repro/internal/trace"
	"repro/internal/txnet"
)

// stageHist accumulates the per-stage breakdowns returned on the wire.
// Histograms are internally sharded, so workers observe concurrently.
var stageHist [trace.NumStages]telemetry.Histogram

func main() {
	var (
		addr        = flag.String("addr", "localhost:7470", "txstore server address")
		conns       = flag.Int("conns", 100, "concurrent client connections (one session each)")
		duration    = flag.Duration("duration", 5*time.Second, "measurement window")
		writes      = flag.Int("writes", 20, "write percentage (split add/remove)")
		keys        = flag.Int64("keys", 1<<14, "key range")
		opsPerTx    = flag.Int("ops", 1, "operations per transaction")
		deadline    = flag.Duration("deadline", 0, "per-request deadline (0 = none)")
		seed        = flag.Int64("seed", 1, "workload seed")
		stages      = flag.Bool("stages", false, "request per-stage breakdowns and print a live latency table every second")
		traceSample = flag.Uint64("trace-sample", 0, "sample 1 in N requests into the flight recorder, propagating trace ids to the server (0 = off)")
		traceOut    = flag.String("trace-out", "", "write the flight recording as Perfetto trace-event JSON to this file")
		serverDebug = flag.String("server-debug", "", "server debug endpoint (host:port); fetch its recording and merge into -trace-out")
	)
	flag.Parse()

	if *traceSample > 0 {
		trace.Enable(*traceSample)
	}

	var (
		commits, deadlines, aborted atomic.Uint64
		failed                      atomic.Uint64
	)
	latCh := make(chan []time.Duration, *conns)
	stopCtx, stop := context.WithTimeout(context.Background(), *duration)
	defer stop()

	if *stages {
		go func() {
			tick := time.NewTicker(time.Second)
			defer tick.Stop()
			for {
				select {
				case <-stopCtx.Done():
					return
				case <-tick.C:
					printStages(os.Stderr, "txload stages (live)")
				}
			}
		}()
	}

	var clients []*txnet.Client
	var clientsMu sync.Mutex
	var wg sync.WaitGroup
	start := time.Now()
	for i := 0; i < *conns; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c, err := txnet.Dial(*addr, &txnet.ClientOptions{Seed: *seed + int64(i)})
			if err != nil {
				fmt.Fprintf(os.Stderr, "txload: conn %d: %v\n", i, err)
				failed.Add(1)
				return
			}
			defer c.Close()
			clientsMu.Lock()
			clients = append(clients, c)
			clientsMu.Unlock()

			rng := rand.New(rand.NewPCG(uint64(*seed), uint64(i)))
			lats := make([]time.Duration, 0, 4096)
			ops := make([]txnet.Op, *opsPerTx)
			var stg txnet.Stages
			for stopCtx.Err() == nil {
				for j := range ops {
					key := rng.Int64N(*keys)
					switch {
					case rng.IntN(100) >= *writes:
						ops[j] = txnet.Op{Code: txnet.OpContains, Struct: 0, Key: key}
					case rng.IntN(2) == 0:
						ops[j] = txnet.Op{Code: txnet.OpAdd, Struct: 0, Key: key}
					default:
						ops[j] = txnet.Op{Code: txnet.OpRemove, Struct: 0, Key: key}
					}
				}
				ctx := stopCtx
				var cancel context.CancelFunc
				if *deadline > 0 {
					ctx, cancel = context.WithTimeout(stopCtx, *deadline)
				}
				t0 := time.Now()
				var err error
				if *stages {
					_, err = c.DoStages(ctx, ops, &stg)
				} else {
					_, err = c.Do(ctx, ops)
				}
				if cancel != nil {
					cancel()
				}
				switch {
				case err == nil:
					commits.Add(1)
					lats = append(lats, time.Since(t0))
					if *stages {
						for st, d := range stg.D {
							if d > 0 {
								stageHist[st].Observe(d.Nanoseconds())
							}
						}
					}
				case errors.Is(err, txnet.ErrDeadline):
					deadlines.Add(1)
				case errors.Is(err, txnet.ErrAborted):
					aborted.Add(1)
				case stopCtx.Err() != nil:
					// window closed mid-request; not a failure
				default:
					fmt.Fprintf(os.Stderr, "txload: conn %d: %v\n", i, err)
					failed.Add(1)
					latCh <- lats
					return
				}
			}
			latCh <- lats
		}(i)
	}
	wg.Wait()
	elapsed := time.Since(start)
	close(latCh)

	var lats []time.Duration
	for l := range latCh {
		lats = append(lats, l...)
	}
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })

	var reconnects, resends, overloads uint64
	clientsMu.Lock()
	for _, c := range clients {
		st := c.Stats()
		reconnects += st.Reconnects
		resends += st.Resends
		overloads += st.Overloads
	}
	clientsMu.Unlock()

	n := commits.Load()
	fmt.Printf("txload: %d conns, %v window\n", *conns, elapsed.Round(time.Millisecond))
	fmt.Printf("  commits    %12d  (%.0f tx/s)\n", n, float64(n)/elapsed.Seconds())
	fmt.Printf("  deadline   %12d\n", deadlines.Load())
	fmt.Printf("  aborted    %12d\n", aborted.Load())
	fmt.Printf("  failed     %12d\n", failed.Load())
	fmt.Printf("  reconnects %12d\n", reconnects)
	fmt.Printf("  resends    %12d\n", resends)
	fmt.Printf("  overloads  %12d\n", overloads)
	if len(lats) > 0 {
		fmt.Printf("  latency    p50 %v  p99 %v  max %v\n",
			pct(lats, 50), pct(lats, 99), lats[len(lats)-1])
	}
	if *stages {
		printStages(os.Stdout, "per-stage latency (committed requests)")
	}
	if *traceOut != "" {
		if err := writeTrace(*traceOut, *serverDebug); err != nil {
			fmt.Fprintf(os.Stderr, "txload: trace: %v\n", err)
			os.Exit(1)
		}
	}
	if failed.Load() > 0 {
		os.Exit(1)
	}
}

// printStages renders the accumulated per-stage breakdown as an aligned
// table: one row per stage that recorded anything.
func printStages(w io.Writer, title string) {
	var b strings.Builder
	fmt.Fprintf(&b, "%s:\n  %-11s %12s %12s %12s %12s\n", title, "stage", "count", "p50", "p99", "mean")
	rows := 0
	for st := trace.Stage(0); st < trace.NumStages; st++ {
		h := stageHist[st].Snapshot()
		if h.Total == 0 {
			continue
		}
		rows++
		fmt.Fprintf(&b, "  %-11s %12d %12v %12v %12v\n",
			st, h.Total, h.Quantile(0.50), h.Quantile(0.99), h.Mean())
	}
	if rows > 0 {
		fmt.Fprint(w, b.String())
	}
}

// writeTrace dumps the local flight recording — merged with the server's
// when a debug endpoint is given — as Perfetto trace-event JSON.
func writeTrace(path, serverDebug string) error {
	local, err := trace.ExportPerfetto(trace.Default.Snapshot())
	if err != nil {
		return err
	}
	dumps := [][]byte{local}
	if serverDebug != "" {
		url := serverDebug
		if !strings.Contains(url, "://") {
			url = "http://" + url
		}
		resp, err := http.Get(url + "/debug/trace/perfetto")
		if err != nil {
			return fmt.Errorf("fetch server trace: %w", err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return fmt.Errorf("fetch server trace: %s", resp.Status)
		}
		remote, err := io.ReadAll(resp.Body)
		if err != nil {
			return fmt.Errorf("fetch server trace: %w", err)
		}
		dumps = append(dumps, remote)
	}
	merged, err := trace.MergePerfetto(dumps...)
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, merged, 0o644); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "txload: wrote %s (load in ui.perfetto.dev)\n", path)
	return nil
}

// pct reads the p-th percentile from a sorted latency slice.
func pct(sorted []time.Duration, p int) time.Duration {
	idx := len(sorted) * p / 100
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}
