// Command stmbench is a general-purpose workload runner over every
// transactional implementation in the repository: pick a structure, an
// algorithm, a workload mix and a thread count, and get throughput plus
// abort statistics. It is the free-form counterpart of cmd/reproduce's
// fixed paper experiments.
//
// Examples:
//
//	stmbench -structure otb-skip -threads 8 -writes 20
//	stmbench -structure stm-rbtree -alg TL2 -size 65536 -writes 50
//	stmbench -structure lazy-list -threads 16 -duration 2s
//	stmbench -list
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"math/rand/v2"
	"os"
	"strings"
	"time"

	"repro/internal/abort"
	"repro/internal/bench"
	"repro/internal/boosting"
	"repro/internal/chaos/failpoint"
	"repro/internal/cm"
	"repro/internal/conc"
	"repro/internal/integrate"
	"repro/internal/mvotb"
	"repro/internal/otb"
	"repro/internal/rinval"
	"repro/internal/rtc"
	"repro/internal/stm"
	"repro/internal/stm/glock"
	"repro/internal/stm/invalstm"
	"repro/internal/stm/norec"
	"repro/internal/stm/ringsw"
	"repro/internal/stm/tl2"
	"repro/internal/stm/tml"
	"repro/internal/stmds"
	"repro/internal/telemetry"
	"repro/internal/trace"
)

// jsonResult is the machine-readable run summary emitted by -json: the
// shared stmbench-result/v1 record (see internal/bench.Result; the schema is
// documented in EXPERIMENTS.md, "Machine-readable results") plus telemetry
// meters and conflict attributions.
type jsonResult struct {
	bench.Result
	Meters    []jsonMeter  `json:"meters,omitempty"`
	Conflicts []jsonHotKey `json:"hot_keys,omitempty"`
}

// jsonMeter is one telemetry meter in the JSON summary.
type jsonMeter struct {
	Name        string            `json:"name"`
	Policy      string            `json:"policy,omitempty"`
	Commits     uint64            `json:"commits"`
	AbortsTotal uint64            `json:"aborts_total"`
	AbortRate   float64           `json:"abort_rate"`
	Aborts      map[string]uint64 `json:"aborts_by_reason,omitempty"`
	Fallbacks   uint64            `json:"fallbacks,omitempty"`
	Escalations uint64            `json:"escalations,omitempty"`
	TxP50NS     int64             `json:"tx_p50_ns"`
	TxP99NS     int64             `json:"tx_p99_ns"`
	CommitP50NS int64             `json:"commit_p50_ns"`
	CommitP99NS int64             `json:"commit_p99_ns"`
}

// jsonHotKey is one conflict-attribution entry in the JSON summary
// (present only when the flight recorder is armed via -trace-sample).
type jsonHotKey struct {
	Runtime    string `json:"runtime"`
	Key        uint64 `json:"key"`
	Aborts     uint64 `json:"aborts"`
	LostTimeNS uint64 `json:"lost_time_ns"`
}

// writeJSON assembles and writes the -json result file.
func writeJSON(path string, res jsonResult, snap []telemetry.MeterSnapshot) error {
	for _, m := range snap {
		jm := jsonMeter{
			Name:        m.Name,
			Policy:      m.Policy,
			Commits:     m.Commits,
			AbortsTotal: m.TotalAborts(),
			AbortRate:   m.AbortRate(),
			Fallbacks:   m.Fallbacks,
			Escalations: m.Escalations,
			TxP50NS:     int64(m.TxLatency.Quantile(0.50)),
			TxP99NS:     int64(m.TxLatency.Quantile(0.99)),
			CommitP50NS: int64(m.CommitLatency.Quantile(0.50)),
			CommitP99NS: int64(m.CommitLatency.Quantile(0.99)),
		}
		for r, n := range m.Aborts {
			if n > 0 {
				if jm.Aborts == nil {
					jm.Aborts = make(map[string]uint64)
				}
				jm.Aborts[telemetry.ReasonName(abort.Reason(r))] = n
			}
		}
		res.Meters = append(res.Meters, jm)
	}
	for _, c := range trace.Default.Conflicts(10) {
		res.Conflicts = append(res.Conflicts, jsonHotKey{
			Runtime: c.Runtime, Key: c.Key, Aborts: c.Aborts, LostTimeNS: c.WaitNS,
		})
	}
	out, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(out, '\n'), 0o644)
}

// stmAlgorithms maps -alg values to constructors (for stm-* structures).
var stmAlgorithms = map[string]func() stm.Algorithm{
	"NOrec":    func() stm.Algorithm { return norec.New() },
	"TL2":      func() stm.Algorithm { return tl2.New() },
	"TL2S":     func() stm.Algorithm { return tl2.NewSharded() },
	"TML":      func() stm.Algorithm { return tml.New() },
	"RingSW":   func() stm.Algorithm { return ringsw.New() },
	"InvalSTM": func() stm.Algorithm { return invalstm.New() },
	"CGL":      func() stm.Algorithm { return glock.New() },
	"RTC":      func() stm.Algorithm { return rtc.New(rtc.Options{Secondaries: 1}) },
	"RInval":   func() stm.Algorithm { return rinval.New(rinval.V3) },
}

// mkDriver builds the requested structure+algorithm driver.
func mkDriver(structure, alg string, capacity int) (bench.SetDriver, error) {
	mkSTM := func(set interface {
		Add(stm.Tx, int64) bool
		Remove(stm.Tx, int64) bool
		Contains(stm.Tx, int64) bool
	}) (bench.SetDriver, error) {
		mk, ok := stmAlgorithms[alg]
		if !ok {
			return nil, fmt.Errorf("unknown -alg %q (see -list)", alg)
		}
		a := mk()
		return bench.NewSTMDriver(a.Name(), a, set), nil
	}
	switch structure {
	case "lazy-list":
		return bench.NewLazyDriver(conc.NewLazyList()), nil
	case "lazy-skip":
		return bench.NewLazyDriver(conc.NewLazySkipList()), nil
	case "boosted-list":
		return bench.NewBoostedDriver(boosting.NewSet(conc.NewLazyList(), 4096)), nil
	case "boosted-skip":
		return bench.NewBoostedDriver(boosting.NewSet(conc.NewLazySkipList(), 4096)), nil
	case "otb-list":
		return bench.NewOTBDriver(otb.NewListSet()), nil
	case "otb-skip":
		return bench.NewOTBDriver(otb.NewSkipSet()), nil
	case "otb-hash":
		return bench.NewOTBDriver(otb.NewHashSet(256)), nil
	case "mvotb-set", "mvotb":
		rt := mvotb.New(mvotb.Options{})
		return bench.NewMVOTBDriver(rt, rt.NewSet(4096)), nil
	case "otb-norec-list":
		return bench.NewIntegratedDriver(integrate.NewOTBNOrec(), otb.NewListSet()), nil
	case "otb-tl2-list":
		return bench.NewIntegratedDriver(integrate.NewOTBTL2(), otb.NewListSet()), nil
	case "stm-list":
		return mkSTM(stmds.NewList(capacity))
	case "stm-skip":
		return mkSTM(stmds.NewSkipList(capacity))
	case "stm-dlist":
		return mkSTM(stmds.NewDList(capacity))
	case "stm-rbtree":
		return mkSTM(bench.RBAsSet(stmds.NewRBTree(capacity)))
	case "stm-hashmap":
		return mkSTM(bench.HashMapAsSet(stmds.NewHashMap(256, capacity)))
	default:
		return nil, fmt.Errorf("unknown -structure %q (see -list)", structure)
	}
}

func main() {
	var (
		structure = flag.String("structure", "otb-list", "data structure implementation")
		alg       = flag.String("alg", "NOrec", "STM algorithm (stm-* structures only)")
		threads   = flag.Int("threads", 4, "worker goroutines")
		size      = flag.Int("size", 512, "initial elements")
		writes    = flag.Int("writes", 20, "write percentage (split add/remove)")
		opsPerTx  = flag.Int("ops", 1, "operations per transaction")
		duration  = flag.Duration("duration", time.Second, "measurement window")
		warmup    = flag.Duration("warmup", 200*time.Millisecond, "warmup before measuring")
		capacity  = flag.Int("capacity", 1<<21, "arena capacity for stm-* structures (nodes)")
		list      = flag.Bool("list", false, "list structures and algorithms, then exit")
		noTel     = flag.Bool("no-telemetry", false, "disable the end-of-run telemetry snapshot")
		cmPolicy  = flag.String("cm", "", "contention-management policy: "+strings.Join(cm.Names(), ", "))
		cmBudget  = flag.Int("cm-budget", 0, "retry budget before serial-mode escalation (<0 disables)")
		failspec  = flag.String("failpoints", "", "fault-injection specs, 'name=action[@triggers];...' (see internal/chaos/failpoint)")
		deadline  = flag.Duration("deadline", 0, "run transactions under a context with this deadline; expired transactions abort with the canceled reason (0 = off)")
		jsonOut   = flag.String("json", "", "write a machine-readable result file to this path (schema in EXPERIMENTS.md)")
		debugAddr = flag.String("debug-addr", "", "serve the live debug endpoint (trace snapshot, conflict table, pprof, expvar) on this address")
		traceEach = flag.Uint64("trace-sample", 0, "arm the transaction flight recorder, sampling 1 in N transactions (0 = off)")
		traceOut  = flag.String("trace-out", "", "write the flight recorder's Perfetto trace-event JSON to this path at exit")
	)
	flag.Parse()

	if err := cm.Configure(*cmPolicy, *cmBudget); err != nil {
		fmt.Fprintln(os.Stderr, "stmbench:", err)
		os.Exit(2)
	}
	if *failspec != "" {
		if err := failpoint.Apply(*failspec); err != nil {
			fmt.Fprintln(os.Stderr, "stmbench:", err)
			os.Exit(2)
		}
	}
	if !*noTel {
		telemetry.Enable()
		telemetry.Publish()
	}
	if *traceEach > 0 || *traceOut != "" {
		n := *traceEach
		if n == 0 {
			n = 1
		}
		trace.Enable(n)
	}
	if *debugAddr != "" {
		srv, err := trace.Serve(*debugAddr)
		if err != nil {
			fmt.Fprintln(os.Stderr, "stmbench:", err)
			os.Exit(2)
		}
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "stmbench: debug endpoint on http://%s/debug/trace\n", srv.Addr())
	}

	if *list {
		fmt.Println("structures: lazy-list lazy-skip boosted-list boosted-skip otb-list" +
			" otb-skip otb-hash mvotb-set otb-norec-list otb-tl2-list stm-list stm-skip" +
			" stm-dlist stm-rbtree stm-hashmap")
		fmt.Print("algorithms (stm-*):")
		for name := range stmAlgorithms {
			fmt.Printf(" %s", name)
		}
		fmt.Println()
		return
	}

	d, err := mkDriver(*structure, *alg, *capacity)
	if err != nil {
		fmt.Fprintln(os.Stderr, "stmbench:", err)
		os.Exit(2)
	}
	defer d.Stop()

	wl := bench.SetWorkload{
		InitialSize: *size,
		KeyRange:    int64(*size) * 8,
		WritePct:    *writes,
		OpsPerTx:    *opsPerTx,
	}
	wl.Populate(d)
	// Window the telemetry to the measured run: population is excluded.
	telemetry.Default.Reset()
	gens := make([]func(*rand.Rand) []bench.SetOp, *threads)
	for i := range gens {
		gens[i] = wl.NewSetWorker(i)
	}
	cfg := bench.Config{Threads: []int{*threads}, Warmup: *warmup, Measure: *duration}

	// -deadline runs every transaction under one shared expiring context:
	// once it passes, transactions return canceled instead of committing
	// (the count shows up in the telemetry table). -failpoints with a panic
	// action injects crashes; the worker recovers the injected value — the
	// runtimes have already rolled back — and keeps going, so recovered
	// panics are countable too.
	var runCtx context.Context
	if *deadline > 0 {
		var cancelRun context.CancelFunc
		runCtx, cancelRun = context.WithTimeout(context.Background(), *deadline)
		defer cancelRun()
	}
	runOne := func(id int, rng *rand.Rand) {
		ops := gens[id](rng)
		defer func() {
			p := recover()
			if p == nil {
				return
			}
			if _, injected := p.(*failpoint.PanicValue); !injected {
				panic(p)
			}
		}()
		if runCtx != nil {
			_ = d.RunTxCtx(runCtx, ops)
			return
		}
		d.RunTx(ops)
	}

	workload := fmt.Sprintf("%s/w%d/t%d", *structure, *writes, *threads)
	var tput float64
	var memStats bench.MemStats
	telemetry.Default.Do(d.Name(), func() {
		trace.Do(d.Name(), workload, func() {
			tput, memStats = bench.ThroughputMem(cfg, *threads, runOne)
		})
	})
	fmt.Printf("%-16s %-10s threads=%-3d size=%-7d writes=%d%% ops/tx=%d\n",
		*structure, d.Name(), *threads, *size, *writes, *opsPerTx)
	fmt.Printf("throughput: %.0f tx/sec (%.0f ops/sec)\n", tput, tput*float64(*opsPerTx))
	fmt.Printf("memory: %.2f allocs/tx, %.1f B/tx, %d GC cycles, %s total pause\n",
		memStats.AllocsPerTx, memStats.AllocBytesPerTx, memStats.NumGC,
		time.Duration(memStats.GCPauseTotalNS))
	if telemetry.Default.Enabled() {
		fmt.Println()
		snap := telemetry.Default.Snapshot()
		telemetry.WriteTable(os.Stdout, snap)
		var panics, canceled uint64
		for _, m := range snap {
			panics += m.RecoveredPanics()
			canceled += m.Canceled()
		}
		fmt.Printf("recovered panics: %d   cancelled transactions: %d\n", panics, canceled)
		telemetry.WriteGauges(os.Stdout)
	}
	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err == nil {
			err = trace.Default.WritePerfetto(f)
			if cerr := f.Close(); err == nil {
				err = cerr
			}
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "stmbench: trace-out:", err)
			os.Exit(1)
		}
	}
	if *jsonOut != "" {
		res := jsonResult{Result: bench.Result{
			Schema:      bench.ResultSchema,
			Structure:   *structure,
			Algorithm:   d.Name(),
			Threads:     *threads,
			InitialSize: *size,
			WritePct:    *writes,
			OpsPerTx:    *opsPerTx,
			DurationNS:  int64(*duration),
			TxPerSec:    tput,
			OpsPerSec:   tput * float64(*opsPerTx),

			AllocsPerTx:     memStats.AllocsPerTx,
			AllocBytesPerTx: memStats.AllocBytesPerTx,
			GCPauseTotalNS:  memStats.GCPauseTotalNS,
			NumGC:           memStats.NumGC,
		}}
		if err := writeJSON(*jsonOut, res, telemetry.Default.Snapshot()); err != nil {
			fmt.Fprintln(os.Stderr, "stmbench: json:", err)
			os.Exit(1)
		}
	}
}
