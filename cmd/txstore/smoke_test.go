package main

import (
	"bufio"
	"context"
	"io"
	"net/http"
	"os"
	"os/exec"
	"regexp"
	"strings"
	"syscall"
	"testing"
	"time"

	"repro/internal/omtext"
	"repro/internal/trace"
	"repro/internal/txnet"
)

// TestMain lets this test binary double as the txstore binary: when the
// smoke test re-execs itself with TXSTORE_SMOKE_CHILD=1, it runs main()
// with the child's flags instead of the test harness.
func TestMain(m *testing.M) {
	if os.Getenv("TXSTORE_SMOKE_CHILD") == "1" {
		main()
		return
	}
	os.Exit(m.Run())
}

var (
	servingRE = regexp.MustCompile(`serving \S+ store on (\S+)`)
	debugRE   = regexp.MustCompile(`debug endpoint on http://(\S+)/debug/trace`)
)

// TestMetricsScrapeSmoke is the CI metrics job run as a test: boot a
// durable txstore with a debug endpoint, commit one traced transaction,
// scrape /metrics, validate the exposition with the vendored OpenMetrics
// parser, and require the families the dashboards depend on — txnet
// sessions and admission, WAL durability, request-latency histograms —
// with at least one trace-id exemplar. Then SIGTERM and expect a clean
// drain.
func TestMetricsScrapeSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns a child process")
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	cmd := exec.CommandContext(ctx, os.Args[0],
		"-addr", "127.0.0.1:0",
		"-debug-addr", "127.0.0.1:0",
		"-wal-dir", t.TempDir(),
		"-fsync", "always",
		"-slow-ms", "0.000001", // everything is slow: exercises the slow log
		"-trace-sample", "1",
	)
	cmd.Env = append(os.Environ(), "TXSTORE_SMOKE_CHILD=1")
	stderr, err := cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		_ = cmd.Process.Kill()
		_ = cmd.Wait()
	}()

	// The child prints its bound addresses on stderr; scan for both while
	// teeing the rest (the slow-request log lands here too).
	var serveAddr, debugAddr string
	var slowSeen = make(chan string, 1)
	lines := bufio.NewScanner(stderr)
	addrCh := make(chan [2]string, 1)
	go func() {
		var sa, da string
		for lines.Scan() {
			line := lines.Text()
			if m := servingRE.FindStringSubmatch(line); m != nil {
				sa = m[1]
			}
			if m := debugRE.FindStringSubmatch(line); m != nil {
				da = m[1]
			}
			if sa != "" && da != "" && addrCh != nil {
				addrCh <- [2]string{sa, da}
				addrCh = nil
			}
			if strings.Contains(line, "slow-request") {
				select {
				case slowSeen <- line:
				default:
				}
			}
		}
	}()
	select {
	case got := <-addrCh:
		serveAddr, debugAddr = got[0], got[1]
	case <-time.After(10 * time.Second):
		t.Fatal("child did not announce its addresses")
	}

	// One traced committed transaction: the client draws the sample, the
	// wire carries the trace id, the server's histograms get an exemplar.
	trace.Enable(1)
	defer func() {
		trace.Disable()
		trace.Default.Reset()
	}()
	c, err := txnet.Dial(serveAddr, &txnet.ClientOptions{Seed: 7})
	if err != nil {
		t.Fatalf("dial %s: %v", serveAddr, err)
	}
	var st txnet.Stages
	if _, err := c.DoStages(ctx, []txnet.Op{
		{Code: txnet.OpAdd, Struct: 0, Key: 1},
		{Code: txnet.OpPut, Struct: 1, Key: 1, Val: 2},
	}, &st); err != nil {
		t.Fatalf("commit: %v", err)
	}
	c.Close()
	if st.D[trace.StageFsync] <= 0 {
		t.Fatalf("stage block has no fsync wait: %+v", st.D)
	}

	resp, err := http.Get("http://" + debugAddr + "/metrics")
	if err != nil {
		t.Fatalf("scrape: %v", err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatalf("scrape read: %v", err)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "openmetrics-text") {
		t.Fatalf("content type %q", ct)
	}

	fams, err := omtext.Parse(body)
	if err != nil {
		t.Fatalf("exposition invalid: %v\n%s", err, body)
	}
	want := map[string]float64{
		"txnet_requests_total":           1,
		"txnet_commits_total":            1,
		"txnet_sessions_opened_total":    1,
		"txnet_admission_executed_total": 1,
		"wal_appends_total":              1,
		"wal_fsyncs_total":               1,
	}
	for name, min := range want {
		fam := omtext.Find(fams, strings.TrimSuffix(name, "_total"))
		if fam == nil {
			t.Errorf("family %s missing", name)
			continue
		}
		s := fam.Sample(name, nil)
		if s == nil || s.Value < min {
			t.Errorf("%s = %+v, want >= %v", name, s, min)
		}
	}
	for _, hist := range []string{"txnet_request_duration_seconds", "wal_fsync_duration_seconds"} {
		fam := omtext.Find(fams, hist)
		if fam == nil || fam.Type != "histogram" {
			t.Errorf("histogram %s missing", hist)
			continue
		}
		if s := fam.Sample(hist+"_count", nil); s == nil || s.Value < 1 {
			t.Errorf("%s recorded nothing: %+v", hist, s)
		}
	}
	req := omtext.Find(fams, "txnet_request_duration_seconds")
	exemplar := false
	if req != nil {
		for _, s := range req.Samples {
			if s.Exemplar != nil && len(s.Exemplar.Labels["trace_id"]) == 16 {
				exemplar = true
			}
		}
	}
	if !exemplar {
		t.Errorf("no trace_id exemplar on txnet_request_duration_seconds:\n%s", body)
	}

	select {
	case line := <-slowSeen:
		if !strings.Contains(line, "trace=") {
			t.Errorf("slow-request line lacks trace id: %s", line)
		}
	case <-time.After(2 * time.Second):
		t.Error("no slow-request line on stderr")
	}

	// Graceful drain on SIGTERM.
	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- cmd.Wait() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("child exit: %v", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("child did not drain after SIGTERM")
	}
}
