// Command txstore serves the repository's transactional data structures
// over TCP: OTB sets/maps/priority queues (or any word-based STM runtime)
// behind a length-prefixed wire protocol with per-client sessions,
// exactly-once request sequencing, deadline propagation, admission control
// and graceful drain. It is the networked promotion of the remote-commit
// split (paper chapter 5): the client ships whole transactions, the server
// owns the structures.
//
// Examples:
//
//	txstore -addr :7470
//	txstore -addr :7470 -wal-dir /var/lib/txstore -fsync always   # durable
//	txstore -addr :7470 -store stm -alg TL2
//	txstore -addr :7470 -max-inflight 64 -cm hybrid -debug-addr localhost:6060
//	txstore -failpoints 'txnet.conn.drop=panic@prob:0.01'   # chaos drill
//
// SIGINT/SIGTERM drains gracefully: the listener closes, in-flight
// transactions finish (bounded by -drain-timeout), stragglers are cancelled
// and answered with the shutting-down status, then every connection closes.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/chaos/failpoint"
	"repro/internal/cm"
	"repro/internal/stm"
	"repro/internal/stm/glock"
	"repro/internal/stm/invalstm"
	"repro/internal/stm/norec"
	"repro/internal/stm/ringsw"
	"repro/internal/stm/tl2"
	"repro/internal/stm/tml"
	"repro/internal/telemetry"
	"repro/internal/trace"
	"repro/internal/txnet"
	"repro/internal/wal"
)

// stmAlgorithms are the context-aware runtimes an -store stm server can
// host (deadline propagation needs AtomicCtx, so the list is the
// AlgorithmCtx subset of the repository's STMs).
var stmAlgorithms = map[string]func() stm.AlgorithmCtx{
	"NOrec":    func() stm.AlgorithmCtx { return norec.New() },
	"TL2":      func() stm.AlgorithmCtx { return tl2.New() },
	"TL2S":     func() stm.AlgorithmCtx { return tl2.NewSharded() },
	"TML":      func() stm.AlgorithmCtx { return tml.New() },
	"RingSW":   func() stm.AlgorithmCtx { return ringsw.New() },
	"InvalSTM": func() stm.AlgorithmCtx { return invalstm.New() },
	"CGL":      func() stm.AlgorithmCtx { return glock.New() },
}

func main() {
	var (
		addr        = flag.String("addr", ":7470", "listen address")
		storeKind   = flag.String("store", "otb", "backing runtime: otb (boosted set+map+pq), mvotb (multi-version set+map) or stm (word-based set+map)")
		alg         = flag.String("alg", "NOrec", "algorithm for -store stm: "+strings.Join(algNames(), ", "))
		capacity    = flag.Int("capacity", 1<<20, "arena capacity for -store stm (inserts per structure)")
		maxInflight = flag.Int("max-inflight", txnet.DefaultMaxInflight, "admission slots (concurrently executing transactions)")
		patience    = flag.Duration("patience", txnet.DefaultAdmissionPatience, "how long an arrival waits for a slot before being shed")
		sessionTTL  = flag.Duration("session-ttl", txnet.DefaultSessionTTL, "idle time before a session (and its exactly-once cache) expires")
		drain       = flag.Duration("drain-timeout", 10*time.Second, "graceful-drain budget on SIGTERM before in-flight work is cancelled")
		cmPolicy    = flag.String("cm", "", "contention-management policy: "+strings.Join(cm.Names(), ", "))
		cmBudget    = flag.Int("cm-budget", 0, "retry budget before serial-mode escalation (<0 disables)")
		failspec    = flag.String("failpoints", "", "fault-injection specs, 'name=action[@triggers];...' (see internal/chaos/failpoint)")
		debugAddr   = flag.String("debug-addr", "", "serve the live debug endpoint (trace snapshot, pprof, expvar) on this address")
		statsEvery  = flag.Duration("stats-every", 0, "periodically log server stats to stderr (0 = off)")
		walDir      = flag.String("wal-dir", "", "directory for the write-ahead log; enables durable mode (-store otb only) with recovery on start")
		fsyncPolicy = flag.String("fsync", "always", "WAL sync policy: always (ack after fsync), interval (background fsync), never (OS decides)")
		fsyncEvery  = flag.Duration("fsync-interval", 2*time.Millisecond, "background fsync cadence for -fsync interval")
		snapEvery   = flag.Int("snapshot-every", txnet.DefaultSnapshotEvery, "snapshot the store+sessions after this many logged commits (<=0 disables)")
		slowMS      = flag.Float64("slow-ms", 0, "log a structured per-stage breakdown for requests slower than this many milliseconds (0 = off)")
		traceSample = flag.Uint64("trace-sample", 0, "arm the flight recorder, tracing 1 in N requests (0 = off, 1 = every request)")
	)
	flag.Parse()

	if err := cm.Configure(*cmPolicy, *cmBudget); err != nil {
		fatal(err)
	}
	if *failspec != "" {
		if err := failpoint.Apply(*failspec); err != nil {
			fatal(err)
		}
	}
	telemetry.Enable()
	telemetry.Publish()
	if *traceSample > 0 {
		trace.Enable(*traceSample)
	}

	var store txnet.Store
	var dur *txnet.Durable
	switch *storeKind {
	case "otb":
		otbStore := txnet.NewOTBStore()
		store = otbStore
		if *walDir != "" {
			policy, err := wal.ParsePolicy(*fsyncPolicy)
			if err != nil {
				fatal(err)
			}
			every := *snapEvery
			if every <= 0 {
				every = -1
			}
			dur, err = txnet.OpenDurable(otbStore, txnet.DurabilityOptions{
				Dir:           *walDir,
				Fsync:         policy,
				FsyncInterval: *fsyncEvery,
				SnapshotEvery: every,
			})
			if err != nil {
				fatal(err)
			}
			rec := dur.Recovery()
			fmt.Fprintf(os.Stderr,
				"txstore: recovered %s in %v: snapshot lsn %d, %d records (%d commits) replayed, %d sessions, torn-tail=%v, snapshots-skipped=%d\n",
				*walDir, rec.Elapsed.Round(time.Microsecond), rec.SnapshotLSN, rec.RecordsReplayed,
				rec.CommitsReplayed, rec.SessionsRestored, rec.TornTail, rec.SnapshotsSkipped)
		}
	case "mvotb":
		st := txnet.NewMVOTBStore()
		defer st.Stop()
		store = st
	case "stm":
		mk, ok := stmAlgorithms[*alg]
		if !ok {
			fatal(fmt.Errorf("unknown -alg %q (have %s)", *alg, strings.Join(algNames(), ", ")))
		}
		store = txnet.NewSTMStore(mk(), *capacity)
	default:
		fatal(fmt.Errorf("unknown -store %q (otb, mvotb or stm)", *storeKind))
	}
	if *walDir != "" && dur == nil {
		fatal(fmt.Errorf("-wal-dir requires -store otb (the durable dump/replay path is OTB-only)"))
	}

	if *debugAddr != "" {
		dbg, err := trace.Serve(*debugAddr)
		if err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "txstore: debug endpoint on http://%s/debug/trace (metrics on /metrics)\n", dbg.Addr())
		defer func() {
			ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
			defer cancel()
			_ = dbg.Shutdown(ctx)
		}()
	}

	srv, err := txnet.Listen(*addr, txnet.Options{
		Store:             store,
		Durable:           dur,
		MaxInflight:       *maxInflight,
		AdmissionPatience: *patience,
		SessionTTL:        *sessionTTL,
		SlowThreshold:     time.Duration(*slowMS * float64(time.Millisecond)),
	})
	if err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "txstore: serving %s store on %s\n", *storeKind, srv.Addr())

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)

	if *statsEvery > 0 {
		go func() {
			tick := time.NewTicker(*statsEvery)
			defer tick.Stop()
			for range tick.C {
				fmt.Fprintf(os.Stderr, "txstore: %+v\n", srv.Stats())
			}
		}()
	}

	got := <-sig
	fmt.Fprintf(os.Stderr, "txstore: %s — draining (budget %v)\n", got, *drain)
	ctx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	err = srv.Shutdown(ctx)
	st := srv.Stats()
	fmt.Fprintf(os.Stderr, "txstore: drained; final stats %+v\n", st)
	if err != nil {
		fmt.Fprintf(os.Stderr, "txstore: drain incomplete: %v\n", err)
		os.Exit(1)
	}
}

func algNames() []string {
	names := make([]string, 0, len(stmAlgorithms))
	for n := range stmAlgorithms {
		names = append(names, n)
	}
	return names
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "txstore:", err)
	os.Exit(2)
}
