// Command benchgate is the CI performance gate: it runs a fixed matrix of
// stmbench configurations, records a trajectory file of stmbench-result/v1
// records plus an environment fingerprint, and compares a fresh run against
// a committed baseline, failing on throughput regressions beyond a
// threshold.
//
// Usage:
//
//	benchgate -run -out BENCH_2026-08-08.json            # record a trajectory
//	benchgate -compare BENCH_2026-08-08.json             # gate vs BENCH_baseline.json
//	benchgate -compare current.json -baseline old.json -threshold 15
//
// The gate is hard (non-zero exit) only when the baseline's environment
// fingerprint (CPU count, GOMAXPROCS, Go version, OS/arch) matches the
// current machine; on a different machine the comparison is advisory, since
// absolute throughput is not transferable across hosts. -strict upgrades
// advisory mismatches to hard failures for pinned runners whose fingerprint
// drift should itself be an error.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"sort"
	"time"

	"repro/internal/bench"
)

// trajectorySchema versions the benchgate output file.
const trajectorySchema = "benchgate-trajectory/v1"

// envFingerprint identifies the machine a trajectory was recorded on.
// Throughput comparisons across different fingerprints are advisory only.
type envFingerprint struct {
	GoVersion string `json:"go_version"`
	GOOS      string `json:"goos"`
	GOARCH    string `json:"goarch"`
	NumCPU    int    `json:"num_cpu"`
	MaxProcs  int    `json:"gomaxprocs"`
}

func currentEnv() envFingerprint {
	return envFingerprint{
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		NumCPU:    runtime.NumCPU(),
		MaxProcs:  runtime.GOMAXPROCS(0),
	}
}

// trajectory is one recorded benchmark run of the full matrix.
type trajectory struct {
	Schema  string         `json:"schema"`
	Created string         `json:"created"`
	Env     envFingerprint `json:"env"`
	Results []bench.Result `json:"results"`
}

// matrixConfig is one point of the fixed benchmark matrix.
type matrixConfig struct {
	Structure string
	Alg       string // stm-* structures only
	Threads   int
	WritePct  int
}

// matrix is the fixed configuration set the gate tracks. It covers the OTB
// hot paths (list, skip), the boosted and lazy baselines, the multi-version
// runtime at its read-mostly design points (95/5 and 100/0 — where the
// never-abort snapshot path is the whole story), and the three memory STMs
// with pooled descriptors (NOrec, TL2, sharded TL2), at low and high thread
// counts and write ratios. Changing existing points invalidates the
// committed baseline — reseed BENCH_baseline.json in the same commit; new
// points are reported as advisory until the baseline learns them.
var matrix = []matrixConfig{
	{Structure: "otb-list", Threads: 1, WritePct: 20},
	{Structure: "otb-list", Threads: 4, WritePct: 20},
	{Structure: "otb-list", Threads: 4, WritePct: 80},
	{Structure: "otb-skip", Threads: 4, WritePct: 20},
	{Structure: "boosted-list", Threads: 4, WritePct: 20},
	{Structure: "lazy-list", Threads: 4, WritePct: 20},
	{Structure: "mvotb-set", Threads: 4, WritePct: 5},
	{Structure: "mvotb-set", Threads: 4, WritePct: 0},
	{Structure: "stm-list", Alg: "NOrec", Threads: 1, WritePct: 20},
	{Structure: "stm-list", Alg: "NOrec", Threads: 4, WritePct: 20},
	{Structure: "stm-list", Alg: "TL2", Threads: 4, WritePct: 20},
	{Structure: "stm-list", Alg: "TL2S", Threads: 4, WritePct: 20},
}

// key identifies a matrix point across runs: algorithm comes from the
// result (driver name), so it distinguishes stm-list/NOrec from
// stm-list/TL2.
func key(r bench.Result) string {
	return fmt.Sprintf("%s|%s|t%d|w%d|o%d",
		r.Structure, r.Algorithm, r.Threads, r.WritePct, r.OpsPerTx)
}

// regression is one gated comparison that moved beyond the threshold.
type regression struct {
	Key      string
	Baseline float64
	Current  float64
	DeltaPct float64
}

// compare returns the matrix points whose throughput dropped more than
// thresholdPct from baseline to current, plus the points present on only
// one side: additions (in current but not baseline — the matrix grew) and
// removals (in baseline but not current — a scenario was retired, or a run
// silently lost coverage). One-sided points are advisory, never gating, but
// removals deserve a close look: a gate that stops running a scenario stops
// protecting it.
func compare(baseline, current []bench.Result, thresholdPct float64) (regs []regression, added, removed []string) {
	base := make(map[string]bench.Result, len(baseline))
	for _, r := range baseline {
		base[key(r)] = r
	}
	seen := make(map[string]bool, len(current))
	for _, cur := range current {
		k := key(cur)
		seen[k] = true
		b, ok := base[k]
		if !ok {
			added = append(added, k)
			continue
		}
		if b.TxPerSec <= 0 {
			continue
		}
		deltaPct := (cur.TxPerSec - b.TxPerSec) / b.TxPerSec * 100
		if deltaPct < -thresholdPct {
			regs = append(regs, regression{
				Key: k, Baseline: b.TxPerSec, Current: cur.TxPerSec, DeltaPct: deltaPct,
			})
		}
	}
	for k := range base {
		if !seen[k] {
			removed = append(removed, k)
		}
	}
	sort.Strings(added)
	sort.Strings(removed)
	return regs, added, removed
}

// runMatrix executes the fixed matrix through the stmbench binary, parsing
// each -json result file.
func runMatrix(stmbench string, duration, warmup time.Duration) ([]bench.Result, error) {
	tmp, err := os.MkdirTemp("", "benchgate")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(tmp)
	var results []bench.Result
	for i, m := range matrix {
		out := filepath.Join(tmp, fmt.Sprintf("r%d.json", i))
		args := []string{
			"-structure", m.Structure,
			"-threads", fmt.Sprint(m.Threads),
			"-writes", fmt.Sprint(m.WritePct),
			"-duration", duration.String(),
			"-warmup", warmup.String(),
			"-no-telemetry",
			"-json", out,
		}
		if m.Alg != "" {
			args = append(args, "-alg", m.Alg)
		}
		cmd := exec.Command(stmbench, args...)
		cmd.Stdout = os.Stderr
		cmd.Stderr = os.Stderr
		fmt.Fprintf(os.Stderr, "benchgate: [%d/%d] %s %s t=%d w=%d\n",
			i+1, len(matrix), m.Structure, m.Alg, m.Threads, m.WritePct)
		if err := cmd.Run(); err != nil {
			return nil, fmt.Errorf("stmbench %s/%s: %w", m.Structure, m.Alg, err)
		}
		raw, err := os.ReadFile(out)
		if err != nil {
			return nil, err
		}
		var r bench.Result
		if err := json.Unmarshal(raw, &r); err != nil {
			return nil, fmt.Errorf("parse %s: %w", out, err)
		}
		if r.Schema != bench.ResultSchema {
			return nil, fmt.Errorf("%s: unexpected schema %q", out, r.Schema)
		}
		results = append(results, r)
	}
	return results, nil
}

func readTrajectory(path string) (trajectory, error) {
	var t trajectory
	raw, err := os.ReadFile(path)
	if err != nil {
		return t, err
	}
	if err := json.Unmarshal(raw, &t); err != nil {
		return t, fmt.Errorf("parse %s: %w", path, err)
	}
	if t.Schema != trajectorySchema {
		return t, fmt.Errorf("%s: unexpected schema %q (want %s)", path, t.Schema, trajectorySchema)
	}
	return t, nil
}

func main() {
	var (
		doRun     = flag.Bool("run", false, "run the fixed matrix and write a trajectory file")
		out       = flag.String("out", "", "trajectory output path for -run (default BENCH_<date>.json)")
		stmbench  = flag.String("stmbench", "", "stmbench binary to exec (default: 'go run ./cmd/stmbench')")
		duration  = flag.Duration("duration", time.Second, "per-point measurement window for -run")
		warmup    = flag.Duration("warmup", 200*time.Millisecond, "per-point warmup for -run")
		doCompare = flag.String("compare", "", "trajectory file to gate against the baseline")
		baseline  = flag.String("baseline", "BENCH_baseline.json", "baseline trajectory for -compare")
		threshold = flag.Float64("threshold", 10, "throughput regression threshold, percent")
		strict    = flag.Bool("strict", false, "fail on environment-fingerprint mismatch instead of downgrading to advisory")
	)
	flag.Parse()

	switch {
	case *doRun:
		bin := *stmbench
		var cleanup string
		if bin == "" {
			// Build once rather than paying `go run` compilation per point.
			tmp, err := os.CreateTemp("", "stmbench")
			if err != nil {
				fatal(err)
			}
			tmp.Close()
			cleanup = tmp.Name()
			build := exec.Command("go", "build", "-o", cleanup, "./cmd/stmbench")
			build.Stdout, build.Stderr = os.Stderr, os.Stderr
			if err := build.Run(); err != nil {
				fatal(fmt.Errorf("build stmbench: %w", err))
			}
			bin = cleanup
		}
		results, err := runMatrix(bin, *duration, *warmup)
		if cleanup != "" {
			os.Remove(cleanup)
		}
		if err != nil {
			fatal(err)
		}
		path := *out
		if path == "" {
			path = fmt.Sprintf("BENCH_%s.json", time.Now().UTC().Format("2006-01-02"))
		}
		t := trajectory{
			Schema:  trajectorySchema,
			Created: time.Now().UTC().Format(time.RFC3339),
			Env:     currentEnv(),
			Results: results,
		}
		raw, err := json.MarshalIndent(t, "", "  ")
		if err != nil {
			fatal(err)
		}
		if err := os.WriteFile(path, append(raw, '\n'), 0o644); err != nil {
			fatal(err)
		}
		fmt.Printf("benchgate: wrote %d results to %s\n", len(results), path)

	case *doCompare != "":
		cur, err := readTrajectory(*doCompare)
		if err != nil {
			fatal(err)
		}
		base, err := readTrajectory(*baseline)
		if err != nil {
			fatal(err)
		}
		regs, added, removed := compare(base.Results, cur.Results, *threshold)
		for _, a := range added {
			fmt.Printf("benchgate: addition (advisory): %s — new scenario, no baseline to compare against; it gates once the baseline is reseeded\n", a)
		}
		for _, r := range removed {
			fmt.Printf("benchgate: removal (advisory): %s — in the baseline but absent from this run; retired scenario or lost coverage?\n", r)
		}
		if len(added) > 0 || len(removed) > 0 {
			fmt.Printf("benchgate: matrix drift: +%d/-%d scenario(s) vs baseline (advisory, not gating)\n",
				len(added), len(removed))
		}
		envMatch := base.Env == cur.Env
		if !envMatch {
			fmt.Printf("benchgate: environment fingerprint mismatch:\n  baseline: %+v\n  current:  %+v\n",
				base.Env, cur.Env)
		}
		for _, r := range regs {
			fmt.Printf("benchgate: REGRESSION %s: %.0f -> %.0f tx/sec (%.1f%%)\n",
				r.Key, r.Baseline, r.Current, r.DeltaPct)
		}
		switch {
		case len(regs) == 0:
			fmt.Printf("benchgate: OK — %d points within %.0f%% of baseline\n",
				len(cur.Results), *threshold)
		case envMatch || *strict:
			fatal(fmt.Errorf("%d regression(s) beyond %.0f%%", len(regs), *threshold))
		default:
			fmt.Printf("benchgate: ADVISORY — %d regression(s), not gating (fingerprint mismatch; rerun on the baseline machine or reseed BENCH_baseline.json)\n",
				len(regs))
		}

	default:
		fmt.Fprintln(os.Stderr, "benchgate: need -run or -compare <file> (see -h)")
		os.Exit(2)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchgate:", err)
	os.Exit(1)
}
