package main

import (
	"sort"
	"testing"

	"repro/internal/bench"
)

func res(structure, alg string, threads, writes int, tput float64) bench.Result {
	return bench.Result{
		Schema:    bench.ResultSchema,
		Structure: structure,
		Algorithm: alg,
		Threads:   threads,
		WritePct:  writes,
		OpsPerTx:  1,
		TxPerSec:  tput,
	}
}

func TestCompareWithinThreshold(t *testing.T) {
	base := []bench.Result{
		res("otb-list", "otb-list", 4, 20, 100000),
		res("stm-list", "TL2", 4, 20, 80000),
	}
	cur := []bench.Result{
		res("otb-list", "otb-list", 4, 20, 95000), // -5%
		res("stm-list", "TL2", 4, 20, 88000),      // +10%
	}
	regs, added, removed := compare(base, cur, 10)
	if len(regs) != 0 {
		t.Fatalf("expected no regressions, got %+v", regs)
	}
	if len(added) != 0 || len(removed) != 0 {
		t.Fatalf("expected no matrix drift, got +%v -%v", added, removed)
	}
}

func TestCompareFlagsRegression(t *testing.T) {
	base := []bench.Result{res("otb-list", "otb-list", 4, 20, 100000)}
	cur := []bench.Result{res("otb-list", "otb-list", 4, 20, 85000)} // -15%
	regs, _, _ := compare(base, cur, 10)
	if len(regs) != 1 {
		t.Fatalf("expected 1 regression, got %d", len(regs))
	}
	r := regs[0]
	if r.DeltaPct > -10 {
		t.Errorf("delta = %.1f%%, expected below -10%%", r.DeltaPct)
	}
	if r.Baseline != 100000 || r.Current != 85000 {
		t.Errorf("regression carries wrong values: %+v", r)
	}
}

// Different algorithms on the same structure are distinct matrix points; a
// regression in one must not be masked by the other.
func TestCompareKeysByAlgorithm(t *testing.T) {
	base := []bench.Result{
		res("stm-list", "NOrec", 4, 20, 100000),
		res("stm-list", "TL2", 4, 20, 100000),
	}
	cur := []bench.Result{
		res("stm-list", "NOrec", 4, 20, 50000), // -50%
		res("stm-list", "TL2", 4, 20, 100000),
	}
	regs, _, _ := compare(base, cur, 10)
	if len(regs) != 1 || regs[0].Key != key(base[0]) {
		t.Fatalf("expected exactly the NOrec point to regress, got %+v", regs)
	}
}

// Points missing on either side are reported as additions and removals but
// never gate: the matrix may grow (new point has no baseline) or shrink
// (baseline point retired) — and the two directions must not be conflated,
// since a removal can mean silently lost coverage.
func TestCompareUnmatchedIsAdvisory(t *testing.T) {
	base := []bench.Result{
		res("otb-list", "otb-list", 4, 20, 100000),
		res("otb-skip", "otb-skip", 4, 20, 100000), // retired
	}
	cur := []bench.Result{
		res("otb-list", "otb-list", 4, 20, 99000),
		res("boosted-list", "boosted-list", 4, 20, 70000), // new
	}
	regs, added, removed := compare(base, cur, 10)
	if len(regs) != 0 {
		t.Fatalf("unmatched points must not gate, got %+v", regs)
	}
	if len(added) != 1 || added[0] != key(cur[1]) {
		t.Fatalf("expected the boosted-list point as an addition, got %v", added)
	}
	if len(removed) != 1 || removed[0] != key(base[1]) {
		t.Fatalf("expected the otb-skip point as a removal, got %v", removed)
	}
}

// Additions and removals come back sorted so reports are stable across runs
// regardless of map iteration order.
func TestCompareDriftIsSorted(t *testing.T) {
	var base, cur []bench.Result
	for _, s := range []string{"zz", "aa", "mm"} {
		base = append(base, res(s+"-old", s, 4, 20, 1000))
		cur = append(cur, res(s+"-new", s, 4, 20, 1000))
	}
	_, added, removed := compare(base, cur, 10)
	if !sort.StringsAreSorted(added) || !sort.StringsAreSorted(removed) {
		t.Fatalf("drift not sorted: +%v -%v", added, removed)
	}
	if len(added) != 3 || len(removed) != 3 {
		t.Fatalf("expected 3/3 drift, got +%v -%v", added, removed)
	}
}

// A zero-throughput baseline point (corrupt or failed run) must not divide
// by zero or gate.
func TestCompareZeroBaseline(t *testing.T) {
	base := []bench.Result{res("otb-list", "otb-list", 4, 20, 0)}
	cur := []bench.Result{res("otb-list", "otb-list", 4, 20, 50000)}
	regs, _, _ := compare(base, cur, 10)
	if len(regs) != 0 {
		t.Fatalf("zero baseline must be skipped, got %+v", regs)
	}
}

func TestThresholdBoundary(t *testing.T) {
	base := []bench.Result{res("otb-list", "otb-list", 4, 20, 100000)}
	// Exactly -10% is within a 10% threshold (strictly-beyond gates).
	cur := []bench.Result{res("otb-list", "otb-list", 4, 20, 90000)}
	if regs, _, _ := compare(base, cur, 10); len(regs) != 0 {
		t.Fatalf("-10%% at threshold 10 should pass, got %+v", regs)
	}
	cur[0].TxPerSec = 89999
	if regs, _, _ := compare(base, cur, 10); len(regs) != 1 {
		t.Fatal("-10.001% at threshold 10 should gate")
	}
}
