package main

import (
	"testing"

	"repro/internal/bench"
)

func res(structure, alg string, threads, writes int, tput float64) bench.Result {
	return bench.Result{
		Schema:    bench.ResultSchema,
		Structure: structure,
		Algorithm: alg,
		Threads:   threads,
		WritePct:  writes,
		OpsPerTx:  1,
		TxPerSec:  tput,
	}
}

func TestCompareWithinThreshold(t *testing.T) {
	base := []bench.Result{
		res("otb-list", "otb-list", 4, 20, 100000),
		res("stm-list", "TL2", 4, 20, 80000),
	}
	cur := []bench.Result{
		res("otb-list", "otb-list", 4, 20, 95000), // -5%
		res("stm-list", "TL2", 4, 20, 88000),      // +10%
	}
	regs, unmatched := compare(base, cur, 10)
	if len(regs) != 0 {
		t.Fatalf("expected no regressions, got %+v", regs)
	}
	if len(unmatched) != 0 {
		t.Fatalf("expected no unmatched points, got %v", unmatched)
	}
}

func TestCompareFlagsRegression(t *testing.T) {
	base := []bench.Result{res("otb-list", "otb-list", 4, 20, 100000)}
	cur := []bench.Result{res("otb-list", "otb-list", 4, 20, 85000)} // -15%
	regs, _ := compare(base, cur, 10)
	if len(regs) != 1 {
		t.Fatalf("expected 1 regression, got %d", len(regs))
	}
	r := regs[0]
	if r.DeltaPct > -10 {
		t.Errorf("delta = %.1f%%, expected below -10%%", r.DeltaPct)
	}
	if r.Baseline != 100000 || r.Current != 85000 {
		t.Errorf("regression carries wrong values: %+v", r)
	}
}

// Different algorithms on the same structure are distinct matrix points; a
// regression in one must not be masked by the other.
func TestCompareKeysByAlgorithm(t *testing.T) {
	base := []bench.Result{
		res("stm-list", "NOrec", 4, 20, 100000),
		res("stm-list", "TL2", 4, 20, 100000),
	}
	cur := []bench.Result{
		res("stm-list", "NOrec", 4, 20, 50000), // -50%
		res("stm-list", "TL2", 4, 20, 100000),
	}
	regs, _ := compare(base, cur, 10)
	if len(regs) != 1 || regs[0].Key != key(base[0]) {
		t.Fatalf("expected exactly the NOrec point to regress, got %+v", regs)
	}
}

// Points missing on either side are reported but never gate: the matrix may
// grow (new point has no baseline) or shrink (baseline point retired).
func TestCompareUnmatchedIsAdvisory(t *testing.T) {
	base := []bench.Result{
		res("otb-list", "otb-list", 4, 20, 100000),
		res("otb-skip", "otb-skip", 4, 20, 100000), // retired
	}
	cur := []bench.Result{
		res("otb-list", "otb-list", 4, 20, 99000),
		res("boosted-list", "boosted-list", 4, 20, 70000), // new
	}
	regs, unmatched := compare(base, cur, 10)
	if len(regs) != 0 {
		t.Fatalf("unmatched points must not gate, got %+v", regs)
	}
	if len(unmatched) != 2 {
		t.Fatalf("expected 2 unmatched notes, got %v", unmatched)
	}
}

// A zero-throughput baseline point (corrupt or failed run) must not divide
// by zero or gate.
func TestCompareZeroBaseline(t *testing.T) {
	base := []bench.Result{res("otb-list", "otb-list", 4, 20, 0)}
	cur := []bench.Result{res("otb-list", "otb-list", 4, 20, 50000)}
	regs, _ := compare(base, cur, 10)
	if len(regs) != 0 {
		t.Fatalf("zero baseline must be skipped, got %+v", regs)
	}
}

func TestThresholdBoundary(t *testing.T) {
	base := []bench.Result{res("otb-list", "otb-list", 4, 20, 100000)}
	// Exactly -10% is within a 10% threshold (strictly-beyond gates).
	cur := []bench.Result{res("otb-list", "otb-list", 4, 20, 90000)}
	if regs, _ := compare(base, cur, 10); len(regs) != 0 {
		t.Fatalf("-10%% at threshold 10 should pass, got %+v", regs)
	}
	cur[0].TxPerSec = 89999
	if regs, _ := compare(base, cur, 10); len(regs) != 1 {
		t.Fatal("-10.001% at threshold 10 should gate")
	}
}
