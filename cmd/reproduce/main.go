// Command reproduce regenerates the tables and figures of the paper's
// evaluation sections. Each experiment prints the same rows and series the
// paper plots.
//
// Usage:
//
//	reproduce -list
//	reproduce -exp fig3.3
//	reproduce -exp fig3.3,fig3.4 -threads 1,2,4,8 -measure 500ms
//	reproduce -exp all -quick
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/internal/bench"
	"repro/internal/chaos/failpoint"
	"repro/internal/cm"
	"repro/internal/telemetry"
)

func main() {
	var (
		expFlag      = flag.String("exp", "", "experiment id(s), comma separated, or 'all'")
		listFlag     = flag.Bool("list", false, "list experiments and exit")
		quickFlag    = flag.Bool("quick", false, "use tiny measurement windows (smoke run)")
		threadsFlag  = flag.String("threads", "", "comma-separated thread sweep (default per config)")
		warmupFlag   = flag.Duration("warmup", 0, "per-point warmup (default per config)")
		measureFlag  = flag.Duration("measure", 0, "per-point measurement window (default per config)")
		telemetryOff = flag.Bool("no-telemetry", false, "disable per-experiment abort-reason telemetry tables")
		cmPolicy     = flag.String("cm", "", "contention-management policy: "+strings.Join(cm.Names(), ", "))
		cmBudget     = flag.Int("cm-budget", 0, "retry budget before serial-mode escalation (<0 disables)")
		failspec     = flag.String("failpoints", "", "fault-injection specs, 'name=action[@triggers];...' (see internal/chaos/failpoint)")
		benchOut     = flag.String("bench-out", "", "also write every figure point as stmbench-result/v1 JSON records to this path")
	)
	flag.Parse()

	if err := cm.Configure(*cmPolicy, *cmBudget); err != nil {
		fmt.Fprintln(os.Stderr, "reproduce:", err)
		os.Exit(2)
	}
	if *failspec != "" {
		if err := failpoint.Apply(*failspec); err != nil {
			fmt.Fprintln(os.Stderr, "reproduce:", err)
			os.Exit(2)
		}
	}
	if !*telemetryOff {
		telemetry.Enable()
		telemetry.Publish()
	}

	if *listFlag {
		for _, e := range bench.Experiments() {
			fmt.Printf("%-10s %s\n", e.ID, e.Desc)
		}
		return
	}
	if *expFlag == "" {
		fmt.Fprintln(os.Stderr, "reproduce: -exp required (or -list); e.g. -exp fig3.3")
		os.Exit(2)
	}

	cfg := bench.Full()
	if *quickFlag {
		cfg = bench.Quick()
	}
	if *threadsFlag != "" {
		var threads []int
		for _, part := range strings.Split(*threadsFlag, ",") {
			n, err := strconv.Atoi(strings.TrimSpace(part))
			if err != nil || n <= 0 {
				fmt.Fprintf(os.Stderr, "reproduce: bad -threads value %q\n", part)
				os.Exit(2)
			}
			threads = append(threads, n)
		}
		cfg.Threads = threads
	}
	if *warmupFlag > 0 {
		cfg.Warmup = *warmupFlag
	}
	if *measureFlag > 0 {
		cfg.Measure = *measureFlag
	}

	ids := strings.Split(*expFlag, ",")
	if *expFlag == "all" {
		ids = nil
		for _, e := range bench.Experiments() {
			ids = append(ids, e.ID)
		}
	}
	var results []bench.Result
	for _, id := range ids {
		e, ok := bench.Find(strings.TrimSpace(id))
		if !ok {
			fmt.Fprintf(os.Stderr, "reproduce: unknown experiment %q (try -list)\n", id)
			os.Exit(2)
		}
		start := time.Now()
		if *benchOut != "" && e.Gen != nil {
			// Generate once, print the figure, and keep the points for the
			// machine-readable record file.
			telemetry.Default.Reset()
			f := e.Gen(cfg)
			f.Print(os.Stdout)
			bench.WriteTelemetry(os.Stdout, e.ID)
			results = append(results, bench.FigureResults(e.ID, cfg, f)...)
		} else {
			e.Run(cfg, os.Stdout)
		}
		fmt.Printf("[%s completed in %s]\n\n", e.ID, time.Since(start).Round(time.Millisecond))
	}
	if *benchOut != "" {
		if err := bench.WriteResults(*benchOut, results); err != nil {
			fmt.Fprintln(os.Stderr, "reproduce: bench-out:", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %d stmbench-result/v1 records to %s\n", len(results), *benchOut)
	}
}
