// Benchmarks, one per table and figure of the paper's evaluation sections.
// Each benchmark runs a representative configuration of the corresponding
// experiment under testing.B (b.RunParallel over the same drivers the full
// harness uses); `go run ./cmd/reproduce -exp <id>` regenerates the complete
// thread sweep.
package repro

import (
	"math/rand/v2"
	"sync/atomic"
	"testing"

	"repro/internal/bench"
	"repro/internal/boosting"
	"repro/internal/conc"
	"repro/internal/integrate"
	"repro/internal/mem"
	"repro/internal/otb"
	"repro/internal/rinval"
	"repro/internal/rtc"
	"repro/internal/stamp"
	"repro/internal/stm"
	"repro/internal/stm/invalstm"
	"repro/internal/stm/norec"
	"repro/internal/stm/ringsw"
	"repro/internal/stm/tl2"
	"repro/internal/stmds"
)

// benchMixes is the pair of workload mixes exercised per set benchmark.
var benchMixes = []struct {
	name     string
	writePct int
	opsPerTx int
}{
	{"read-intensive", 20, 1},
	{"high-contention", 80, 5},
}

// benchSetDriver measures b.N transactions of wl on the driver from mk.
func benchSetDriver(b *testing.B, wl bench.SetWorkload, mk func() bench.SetDriver) {
	b.Helper()
	d := mk()
	defer d.Stop()
	wl.Populate(d)
	var worker atomic.Int64
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		id := int(worker.Add(1))
		gen := wl.NewSetWorker(id)
		rng := rand.New(rand.NewPCG(uint64(id), 7))
		for pb.Next() {
			d.RunTx(gen(rng))
		}
	})
}

// setBenchmark runs the three-series Chapter 3 comparison.
func setBenchmark(b *testing.B, size int, drivers map[string]func() bench.SetDriver) {
	for _, mix := range benchMixes {
		wl := bench.SetWorkload{
			InitialSize: size, KeyRange: int64(size) * 8,
			WritePct: mix.writePct, OpsPerTx: mix.opsPerTx,
		}
		for name, mk := range drivers {
			b.Run(mix.name+"/"+name, func(b *testing.B) { benchSetDriver(b, wl, mk) })
		}
	}
}

func BenchmarkFig3_3(b *testing.B) {
	setBenchmark(b, 512, map[string]func() bench.SetDriver{
		"Lazy": func() bench.SetDriver { return bench.NewLazyDriver(conc.NewLazyList()) },
		"PessimisticBoosted": func() bench.SetDriver {
			return bench.NewBoostedDriver(boosting.NewSet(conc.NewLazyList(), 4096))
		},
		"OptimisticBoosted": func() bench.SetDriver { return bench.NewOTBDriver(otb.NewListSet()) },
	})
}

func BenchmarkFig3_4(b *testing.B) {
	setBenchmark(b, 512, map[string]func() bench.SetDriver{
		"Lazy": func() bench.SetDriver { return bench.NewLazyDriver(conc.NewLazySkipList()) },
		"PessimisticBoosted": func() bench.SetDriver {
			return bench.NewBoostedDriver(boosting.NewSet(conc.NewLazySkipList(), 4096))
		},
		"OptimisticBoosted": func() bench.SetDriver { return bench.NewOTBDriver(otb.NewSkipSet()) },
	})
}

func BenchmarkFig3_5(b *testing.B) {
	setBenchmark(b, 64*1024, map[string]func() bench.SetDriver{
		"PessimisticBoosted": func() bench.SetDriver {
			return bench.NewBoostedDriver(boosting.NewSet(conc.NewLazySkipList(), 1<<16))
		},
		"OptimisticBoosted": func() bench.SetDriver { return bench.NewOTBDriver(otb.NewSkipSet()) },
	})
}

// benchPQDriver measures b.N priority-queue transactions.
func benchPQDriver(b *testing.B, opsPerTx int, mk func() bench.PQDriver) {
	b.Helper()
	d := mk()
	defer d.Stop()
	seedRng := rand.New(rand.NewPCG(1, 1))
	var seed []bench.PQOp
	for i := 0; i < 512; i++ {
		seed = append(seed, bench.PQOp{Kind: bench.PQAdd, Key: seedRng.Int64N(1 << 40)})
	}
	d.RunTx(seed)
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		rng := rand.New(rand.NewPCG(rand.Uint64(), 3))
		ops := make([]bench.PQOp, opsPerTx)
		for pb.Next() {
			for i := range ops {
				if rng.IntN(2) == 0 {
					ops[i] = bench.PQOp{Kind: bench.PQAdd, Key: rng.Int64N(1 << 40)}
				} else {
					ops[i] = bench.PQOp{Kind: bench.PQRemoveMin}
				}
			}
			d.RunTx(ops)
		}
	})
}

func BenchmarkFig3_6(b *testing.B) {
	for _, txSize := range []int{1, 5} {
		name := map[int]string{1: "tx1", 5: "tx5"}[txSize]
		b.Run(name+"/PessimisticBoosted", func(b *testing.B) {
			benchPQDriver(b, txSize, func() bench.PQDriver {
				return bench.NewBoostedPQDriver(boosting.NewPQ())
			})
		})
		b.Run(name+"/OptimisticBoosted", func(b *testing.B) {
			benchPQDriver(b, txSize, func() bench.PQDriver {
				return bench.NewOTBHeapPQDriver(otb.NewHeapPQ())
			})
		})
	}
}

func BenchmarkFig3_7(b *testing.B) {
	for _, txSize := range []int{1, 5} {
		name := map[int]string{1: "tx1", 5: "tx5"}[txSize]
		b.Run(name+"/PessimisticBoosted", func(b *testing.B) {
			benchPQDriver(b, txSize, func() bench.PQDriver {
				return bench.NewBoostedPQDriver(
					boosting.NewPQOver(boosting.SkipPQAdapter{Q: conc.NewSkipPQ()}))
			})
		})
		b.Run(name+"/OptimisticBoosted", func(b *testing.B) {
			benchPQDriver(b, txSize, func() bench.PQDriver {
				return bench.NewOTBSkipPQDriver(otb.NewSkipPQ())
			})
		})
	}
}

// chapter4Bench runs the pure-STM vs integrated comparison on one structure
// family.
func chapter4Bench(b *testing.B, size int, drivers map[string]func() bench.SetDriver) {
	wl := bench.SetWorkload{InitialSize: size, KeyRange: int64(size) * 8, WritePct: 50, OpsPerTx: 1}
	for name, mk := range drivers {
		b.Run(name, func(b *testing.B) { benchSetDriver(b, wl, mk) })
	}
}

func BenchmarkFig4_2(b *testing.B) {
	chapter4Bench(b, 512, map[string]func() bench.SetDriver{
		"NOrec": func() bench.SetDriver {
			return bench.NewSTMDriver("NOrec", norec.New(), stmds.NewList(1<<22))
		},
		"TL2": func() bench.SetDriver {
			return bench.NewSTMDriver("TL2", tl2.New(), stmds.NewList(1<<22))
		},
		"OTB-NOrec": func() bench.SetDriver {
			return bench.NewIntegratedDriver(integrate.NewOTBNOrec(), otb.NewListSet())
		},
		"OTB-TL2": func() bench.SetDriver {
			return bench.NewIntegratedDriver(integrate.NewOTBTL2(), otb.NewListSet())
		},
	})
}

func BenchmarkFig4_3(b *testing.B) {
	chapter4Bench(b, 4096, map[string]func() bench.SetDriver{
		"NOrec": func() bench.SetDriver {
			return bench.NewSTMDriver("NOrec", norec.New(), stmds.NewSkipList(1<<20))
		},
		"TL2": func() bench.SetDriver {
			return bench.NewSTMDriver("TL2", tl2.New(), stmds.NewSkipList(1<<20))
		},
		"OTB-NOrec": func() bench.SetDriver {
			return bench.NewIntegratedDriver(integrate.NewOTBNOrec(), otb.NewSkipSet())
		},
		"OTB-TL2": func() bench.SetDriver {
			return bench.NewIntegratedDriver(integrate.NewOTBTL2(), otb.NewSkipSet())
		},
	})
}

func BenchmarkFig4_4(b *testing.B) {
	// Algorithm 7 over the integrated contexts: one set op plus counter
	// updates per transaction.
	for _, mk := range []func() integrate.Algorithm{
		integrateNOrec, integrateTL2,
	} {
		alg := mk()
		set := otb.NewListSet()
		cnt := [2]*mem.Cell{mem.NewCell(0), mem.NewCell(0)}
		b.Run(alg.Name(), func(b *testing.B) {
			b.RunParallel(func(pb *testing.PB) {
				rng := rand.New(rand.NewPCG(rand.Uint64(), 5))
				for pb.Next() {
					k := rng.Int64N(4096)
					alg.Atomic(func(ctx *integrate.Ctx) {
						idx := 0
						if !set.Add(ctx.Sem(), k) {
							idx = 1
						}
						ctx.Write(cnt[idx], ctx.Read(cnt[idx])+1)
					})
				}
			})
		})
		alg.Stop()
	}
}

func integrateNOrec() integrate.Algorithm { return integrate.NewOTBNOrec() }
func integrateTL2() integrate.Algorithm   { return integrate.NewOTBTL2() }

// stampBench runs b.N transactions of every STAMP profile on alg, reporting
// the commit-time ratio when profiling is available.
func stampBench(b *testing.B, mkAlg func() stm.Algorithm) {
	for _, app := range stamp.Apps() {
		b.Run(app.Name, func(b *testing.B) {
			alg := mkAlg()
			defer alg.Stop()
			w := stamp.NewWorkload(app)
			var sink atomic.Uint64
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				rng := rand.New(rand.NewPCG(rand.Uint64(), 11))
				var local uint64
				for pb.Next() {
					local += w.RunTx(alg, rng)
				}
				sink.Add(local)
			})
		})
	}
}

func BenchmarkTable5_1(b *testing.B) {
	// Commit-time ratio measurement: NOrec with the critical-path profiler.
	for _, app := range stamp.Apps() {
		b.Run(app.Name, func(b *testing.B) {
			alg := norec.New()
			prof := &stm.Profile{}
			alg.SetProfile(prof)
			w := stamp.NewWorkload(app)
			var sink atomic.Uint64
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				rng := rand.New(rand.NewPCG(rand.Uint64(), 13))
				var local uint64
				for pb.Next() {
					local += w.RunTx(alg, rng)
				}
				sink.Add(local)
			})
			b.StopTimer()
			snap := prof.Snapshot()
			if snap.TotalNS > 0 {
				b.ReportMetric(100*float64(snap.CommitNS)/float64(snap.TotalNS), "commit%trans")
			}
		})
	}
}

// rbTreeBench measures b.N red-black tree transactions at 50% writes.
func rbTreeBench(b *testing.B, size int, mkAlg func() stm.Algorithm) {
	alg := mkAlg()
	defer alg.Stop()
	d := bench.NewSTMDriver(alg.Name(), alg, bench.RBAsSet(stmds.NewRBTree(1<<21)))
	wl := bench.SetWorkload{InitialSize: size, KeyRange: int64(size) * 8, WritePct: 50, OpsPerTx: 1}
	wl.Populate(d)
	var worker atomic.Int64
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		id := int(worker.Add(1))
		gen := wl.NewSetWorker(id)
		rng := rand.New(rand.NewPCG(uint64(id), 17))
		for pb.Next() {
			d.RunTx(gen(rng))
		}
	})
}

func BenchmarkFig5_5(b *testing.B) {
	for name, mk := range chapter5Algs() {
		b.Run(name, func(b *testing.B) { rbTreeBench(b, 64*1024, mk) })
	}
}

func chapter5Algs() map[string]func() stm.Algorithm {
	return map[string]func() stm.Algorithm{
		"RingSW": func() stm.Algorithm { return ringsw.New() },
		"NOrec":  func() stm.Algorithm { return norec.New() },
		"TL2":    func() stm.Algorithm { return tl2.New() },
		"RTC":    func() stm.Algorithm { return rtc.New(rtc.Options{Secondaries: 1}) },
	}
}

func BenchmarkFig5_6(b *testing.B) {
	// Contention-event proxy: events per transaction on a small tree.
	for _, name := range []string{"NOrec", "RTC"} {
		b.Run(name, func(b *testing.B) {
			var alg stm.Algorithm
			if name == "NOrec" {
				alg = norec.New()
			} else {
				alg = rtc.New(rtc.Options{Secondaries: 1})
			}
			defer alg.Stop()
			d := bench.NewSTMDriver(name, alg, bench.RBAsSet(stmds.NewRBTree(1<<21)))
			wl := bench.SetWorkload{InitialSize: 64, KeyRange: 512, WritePct: 50, OpsPerTx: 1}
			wl.Populate(d)
			alg.Counters().Reset()
			var worker atomic.Int64
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				id := int(worker.Add(1))
				gen := wl.NewSetWorker(id)
				rng := rand.New(rand.NewPCG(uint64(id), 19))
				for pb.Next() {
					d.RunTx(gen(rng))
				}
			})
			b.StopTimer()
			casf, spins := alg.Counters().Snapshot()
			b.ReportMetric(float64(casf+spins)/float64(b.N), "events/tx")
		})
	}
}

func BenchmarkFig5_7(b *testing.B) {
	for name, mk := range chapter5Algs() {
		b.Run(name, func(b *testing.B) {
			alg := mk()
			defer alg.Stop()
			d := bench.NewSTMDriver(name, alg, bench.HashMapAsSet(stmds.NewHashMap(256, 1<<21)))
			wl := bench.SetWorkload{InitialSize: 10000, KeyRange: 80000, WritePct: 50, OpsPerTx: 1}
			wl.Populate(d)
			var worker atomic.Int64
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				id := int(worker.Add(1))
				gen := wl.NewSetWorker(id)
				rng := rand.New(rand.NewPCG(uint64(id), 23))
				for pb.Next() {
					d.RunTx(gen(rng))
				}
			})
		})
	}
}

func BenchmarkFig5_8(b *testing.B) {
	for name, mk := range chapter5Algs() {
		b.Run(name, func(b *testing.B) {
			alg := mk()
			defer alg.Stop()
			d := bench.NewSTMDriver(name, alg, stmds.NewDList(1<<20))
			wl := bench.SetWorkload{InitialSize: 500, KeyRange: 4000, WritePct: 50, OpsPerTx: 1}
			wl.Populate(d)
			var worker atomic.Int64
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				id := int(worker.Add(1))
				gen := wl.NewSetWorker(id)
				rng := rand.New(rand.NewPCG(uint64(id), 29))
				for pb.Next() {
					d.RunTx(gen(rng))
				}
			})
		})
	}
}

func BenchmarkFig5_9(b *testing.B) {
	// Multiprogramming: many more workers than cores.
	b.SetParallelism(16)
	for name, mk := range chapter5Algs() {
		b.Run(name, func(b *testing.B) { rbTreeBench(b, 64*1024, mk) })
	}
}

func BenchmarkFig5_10(b *testing.B) {
	for name, mk := range chapter5Algs() {
		b.Run(name, func(b *testing.B) { stampBench(b, mk) })
	}
}

func BenchmarkFig5_11(b *testing.B) {
	for _, secs := range []int{0, 1, 2} {
		name := map[int]string{0: "no-dd", 1: "one-detector", 2: "two-detectors"}[secs]
		b.Run(name, func(b *testing.B) {
			alg := rtc.New(rtc.Options{Secondaries: secs, DDThreshold: 2})
			defer alg.Stop()
			const banks = 64
			const cellsPer = 8
			cells := make([][]*mem.Cell, banks)
			for i := range cells {
				cells[i] = make([]*mem.Cell, cellsPer)
				for j := range cells[i] {
					cells[i][j] = mem.NewCell(0)
				}
			}
			var worker atomic.Int64
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				mine := cells[int(worker.Add(1))%banks]
				for pb.Next() {
					alg.Atomic(func(tx stm.Tx) {
						for _, c := range mine {
							tx.Write(c, tx.Read(c)+1)
						}
					})
				}
			})
		})
	}
}

func BenchmarkFig6_2(b *testing.B) {
	// Critical-path breakdown on the red-black tree, reported as metrics.
	// The algorithm is created inside the closure: b.Run re-invokes it for
	// b.N calibration, and a server-based algorithm must not be reused
	// after Stop.
	for _, mk := range []func() (stm.Algorithm, *stm.Profile){
		func() (stm.Algorithm, *stm.Profile) {
			a, p := norec.New(), &stm.Profile{}
			a.SetProfile(p)
			return a, p
		},
		func() (stm.Algorithm, *stm.Profile) {
			a, p := invalstm.New(), &stm.Profile{}
			a.SetProfile(p)
			return a, p
		},
		func() (stm.Algorithm, *stm.Profile) {
			a, p := rinval.New(rinval.V3), &stm.Profile{}
			a.SetProfile(p)
			return a, p
		},
	} {
		name, _ := mk()
		benchName := name.Name()
		name.Stop()
		b.Run(benchName, func(b *testing.B) {
			alg, prof := mk()
			defer alg.Stop()
			d := bench.NewSTMDriver(alg.Name(), alg, bench.RBAsSet(stmds.NewRBTree(1<<21)))
			wl := bench.SetWorkload{InitialSize: 16 * 1024, KeyRange: 128 * 1024, WritePct: 50, OpsPerTx: 1}
			wl.Populate(d)
			var worker atomic.Int64
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				id := int(worker.Add(1))
				gen := wl.NewSetWorker(id)
				rng := rand.New(rand.NewPCG(uint64(id), 31))
				for pb.Next() {
					d.RunTx(gen(rng))
				}
			})
			b.StopTimer()
			snap := prof.Snapshot()
			if snap.TotalNS > 0 {
				b.ReportMetric(100*float64(snap.ValidationNS)/float64(snap.TotalNS), "val%")
				b.ReportMetric(100*float64(snap.CommitNS)/float64(snap.TotalNS), "commit%")
			}
		})
	}
}

func BenchmarkFig6_3(b *testing.B) {
	// STAMP breakdown under RInval-V3 (NOrec's is measured by Table 5.1).
	alg := rinval.New(rinval.V3)
	prof := &stm.Profile{}
	alg.SetProfile(prof)
	defer alg.Stop()
	for _, app := range stamp.Apps() {
		b.Run(app.Name, func(b *testing.B) {
			w := stamp.NewWorkload(app)
			var sink atomic.Uint64
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				rng := rand.New(rand.NewPCG(rand.Uint64(), 37))
				var local uint64
				for pb.Next() {
					local += w.RunTx(alg, rng)
				}
				sink.Add(local)
			})
		})
	}
}

func BenchmarkFig6_7(b *testing.B) {
	algs := map[string]func() stm.Algorithm{
		"NOrec":     func() stm.Algorithm { return norec.New() },
		"InvalSTM":  func() stm.Algorithm { return invalstm.New() },
		"RInval-V1": func() stm.Algorithm { return rinval.New(rinval.V1) },
		"RInval-V2": func() stm.Algorithm { return rinval.New(rinval.V2) },
		"RInval-V3": func() stm.Algorithm { return rinval.New(rinval.V3) },
	}
	for name, mk := range algs {
		b.Run(name, func(b *testing.B) { rbTreeBench(b, 64*1024, mk) })
	}
}

func BenchmarkFig6_8(b *testing.B) {
	algs := map[string]func() stm.Algorithm{
		"NOrec":     func() stm.Algorithm { return norec.New() },
		"InvalSTM":  func() stm.Algorithm { return invalstm.New() },
		"RInval-V3": func() stm.Algorithm { return rinval.New(rinval.V3) },
	}
	for name, mk := range algs {
		b.Run(name, func(b *testing.B) { stampBench(b, mk) })
	}
}
