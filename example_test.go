package repro_test

import (
	"fmt"

	"repro"
)

// Composable transactions: operations on any number of boosted structures
// commit or abort together.
func ExampleAtomic() {
	inbox := repro.NewListSet()
	archive := repro.NewSkipSet()
	repro.Atomic(func(tx *repro.Tx) {
		inbox.Add(tx, 7)
		inbox.Add(tx, 9)
	})
	// Move message 7 from inbox to archive, atomically.
	repro.Atomic(func(tx *repro.Tx) {
		if inbox.Remove(tx, 7) {
			archive.Add(tx, 7)
		}
	})
	fmt.Println(inbox.Len(), archive.Len())
	// Output: 1 1
}

// The ordered map defers inserts, updates and deletes to commit; a
// transaction reads through its own pending writes.
func ExampleMap() {
	m := repro.NewMap()
	repro.Atomic(func(tx *repro.Tx) {
		m.Put(tx, 1, 100)
		m.Put(tx, 1, 150) // update of the pending insert
		v, _ := m.Get(tx, 1)
		fmt.Println("in-tx read:", v)
	})
	repro.Atomic(func(tx *repro.Tx) {
		v, ok := m.Get(tx, 1)
		fmt.Println("committed:", v, ok)
	})
	// Output:
	// in-tx read: 150
	// committed: 150 true
}

// The priority queue dequeues in key order across transactions.
func ExampleSkipPQ() {
	q := repro.NewSkipPQ()
	repro.Atomic(func(tx *repro.Tx) {
		q.Add(tx, 30)
		q.Add(tx, 10)
		q.Add(tx, 20)
	})
	repro.Atomic(func(tx *repro.Tx) {
		for {
			k, ok := q.RemoveMin(tx)
			if !ok {
				break
			}
			fmt.Println(k)
		}
	})
	// Output:
	// 10
	// 20
	// 30
}

// Word-based STM: the same atomic-block style over raw memory cells, under
// any of the implemented algorithms.
func ExampleSTM() {
	alg := repro.NewNOrec()
	defer alg.Stop()
	a := repro.NewCell(10)
	b := repro.NewCell(0)
	alg.Atomic(func(tx repro.MemTx) {
		v := tx.Read(a)
		tx.Write(a, 0)
		tx.Write(b, v)
	})
	fmt.Println(a.Load(), b.Load())
	// Output: 0 10
}
