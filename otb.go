// Package repro is an implementation of Optimistic Transactional Boosting
// (OTB, PPoPP 2014) and its companion systems — the DEUCE-style OTB/STM
// integration framework, Remote Transaction Commit (RTC), and Remote
// Invalidation (RInval) — together with every baseline the paper evaluates
// against: lazy concurrent sets and priority queues, Herlihy–Koskinen
// pessimistic boosting, and the NOrec, TL2, TML, RingSW and InvalSTM
// software transactional memories.
//
// This root package is the public facade. The full surface lives in the
// internal packages and is re-exported here by area:
//
//   - OTB data structures and transactions (the paper's contribution):
//     NewListSet, NewSkipSet, NewHeapPQ, NewSkipPQ, Atomic.
//   - Mixed memory+structure transactions (Chapter 4): NewOTBNOrec,
//     NewOTBTL2, and NewCell for transactional memory words.
//   - Word-based STM algorithms (Chapters 2, 5, 6): NewNOrec, NewTL2,
//     NewTML, NewRingSW, NewInvalSTM, NewRTC, NewRInval.
//
// Quick start — two structures updated atomically:
//
//	set := repro.NewListSet()
//	pq := repro.NewSkipPQ()
//	repro.Atomic(func(tx *repro.Tx) {
//		if set.Add(tx, 42) {
//			pq.Add(tx, 42)
//		}
//	})
//
// See the examples directory for runnable programs and cmd/reproduce for
// the benchmark harness that regenerates the paper's figures.
package repro

import (
	"repro/internal/abort"
	"repro/internal/adaptive"
	"repro/internal/htm"
	"repro/internal/integrate"
	"repro/internal/mem"
	"repro/internal/otb"
	"repro/internal/rinval"
	"repro/internal/rtc"
	"repro/internal/stm"
	"repro/internal/stm/glock"
	"repro/internal/stm/invalstm"
	"repro/internal/stm/norec"
	"repro/internal/stm/ringsw"
	"repro/internal/stm/tl2"
	"repro/internal/stm/tml"
)

// Tx is a semantic (OTB) transaction over boosted data structures.
type Tx = otb.Tx

// ListSet is the optimistically boosted linked-list set.
type ListSet = otb.ListSet

// SkipSet is the optimistically boosted skip-list set.
type SkipSet = otb.SkipSet

// HeapPQ is the semi-optimistic boosted heap priority queue.
type HeapPQ = otb.HeapPQ

// SkipPQ is the fully optimistic skip-list priority queue.
type SkipPQ = otb.SkipPQ

// Map is the optimistically boosted ordered map (a Chapter 7 extension).
type Map = otb.Map

// NewListSet creates an empty OTB linked-list set.
func NewListSet() *ListSet { return otb.NewListSet() }

// NewSkipSet creates an empty OTB skip-list set.
func NewSkipSet() *SkipSet { return otb.NewSkipSet() }

// NewHeapPQ creates an empty OTB heap priority queue.
func NewHeapPQ() *HeapPQ { return otb.NewHeapPQ() }

// NewSkipPQ creates an empty OTB skip-list priority queue.
func NewSkipPQ() *SkipPQ { return otb.NewSkipPQ() }

// NewMap creates an empty OTB ordered map.
func NewMap() *Map { return otb.NewMap() }

// Atomic runs fn as an OTB transaction, retrying on conflict until it
// commits. Operations on any number of boosted structures compose
// atomically.
func Atomic(fn func(*Tx)) { otb.Atomic(nil, fn) }

// Retry aborts and retries the current transaction (any flavour).
func Retry() { abort.Retry(abort.Explicit) }

// Cell is one word of transactional memory for the STM algorithms and the
// integration contexts.
type Cell = mem.Cell

// NewCell allocates a transactional memory word holding v.
func NewCell(v uint64) *Cell { return mem.NewCell(v) }

// MemTx is a memory transaction handle (the word-based STM interface).
type MemTx = stm.Tx

// STM is a word-based software transactional memory algorithm.
type STM = stm.Algorithm

// NewNOrec creates a NOrec instance (value-based validation, single global
// sequence lock).
func NewNOrec() STM { return norec.New() }

// NewTL2 creates a TL2 instance (global version clock + ownership records).
func NewTL2() STM { return tl2.New() }

// NewTML creates a TML instance (transactional mutex lock).
func NewTML() STM { return tml.New() }

// NewRingSW creates a single-writer RingSTM instance (bloom-filter ring).
func NewRingSW() STM { return ringsw.New() }

// NewInvalSTM creates a commit-time invalidation instance.
func NewInvalSTM() STM { return invalstm.New() }

// NewCGL creates the coarse global-lock baseline.
func NewCGL() STM { return glock.New() }

// NewRTC creates a Remote Transaction Commit instance with one main commit
// server and the given number of dependency-detector servers. Call Stop
// when done.
func NewRTC(secondaries int) *rtc.STM {
	return rtc.New(rtc.Options{Secondaries: secondaries})
}

// RInvalVersion selects a Remote Invalidation variant.
type RInvalVersion = rinval.Version

// The three Remote Invalidation versions of Chapter 6.
const (
	RInvalV1 = rinval.V1 // remote commit + invalidation on one server
	RInvalV2 = rinval.V2 // commit and invalidation on parallel servers
	RInvalV3 = rinval.V3 // accelerated commit, asynchronous invalidation
)

// NewRInval creates a Remote Invalidation instance. Call Stop when done.
func NewRInval(v RInvalVersion) *rinval.STM { return rinval.New(v) }

// NewHybridHTM creates the emulated best-effort HTM with its software
// fallback path (the Section 7.1.1 hybrid). Small transactions commit in
// "hardware"; capacity or repeated conflicts fall back to software.
func NewHybridHTM() *htm.TM { return htm.New(htm.Options{}) }

// NewAdaptive creates a stop-the-world adaptive STM over the given
// algorithms (Section 5.4.1); the first is initially active.
func NewAdaptive(algs ...STM) (*adaptive.STM, error) { return adaptive.New(algs...) }

// Ctx is a mixed transaction handle: STM memory reads/writes plus OTB
// structure operations (Chapter 4).
type Ctx = integrate.Ctx

// Integrated is an algorithm running mixed OTB+memory transactions.
type Integrated = integrate.Algorithm

// NewOTBNOrec creates the NOrec-based integration context.
func NewOTBNOrec() Integrated { return integrate.NewOTBNOrec() }

// NewOTBTL2 creates the TL2-based integration context.
func NewOTBTL2() Integrated { return integrate.NewOTBTL2() }
