package repro_test

import (
	"sync"
	"testing"

	"repro"
)

// TestFacadeOTB exercises the public API end to end: composable OTB
// transactions over all four structure kinds.
func TestFacadeOTB(t *testing.T) {
	set := repro.NewListSet()
	skip := repro.NewSkipSet()
	heap := repro.NewHeapPQ()
	pq := repro.NewSkipPQ()
	repro.Atomic(func(tx *repro.Tx) {
		set.Add(tx, 1)
		skip.Add(tx, 2)
		heap.Add(tx, 3)
		pq.Add(tx, 4)
	})
	if set.Len() != 1 || skip.Len() != 1 || heap.Len() != 1 || pq.Len() != 1 {
		t.Fatalf("lens = %d,%d,%d,%d; want all 1",
			set.Len(), skip.Len(), heap.Len(), pq.Len())
	}
	repro.Atomic(func(tx *repro.Tx) {
		if k, ok := heap.RemoveMin(tx); !ok || k != 3 {
			t.Errorf("heap min = %d,%v", k, ok)
		}
		if k, ok := pq.RemoveMin(tx); !ok || k != 4 {
			t.Errorf("pq min = %d,%v", k, ok)
		}
	})
}

// TestFacadeRetry checks explicit user retry through the facade.
func TestFacadeRetry(t *testing.T) {
	set := repro.NewListSet()
	tries := 0
	repro.Atomic(func(tx *repro.Tx) {
		tries++
		set.Add(tx, 1)
		if tries < 3 {
			repro.Retry()
		}
	})
	if tries != 3 || set.Len() != 1 {
		t.Fatalf("tries=%d len=%d", tries, set.Len())
	}
}

// TestFacadeSTMs runs a conservation check on every STM constructor the
// facade exposes.
func TestFacadeSTMs(t *testing.T) {
	algs := []repro.STM{
		repro.NewNOrec(), repro.NewTL2(), repro.NewTML(),
		repro.NewRingSW(), repro.NewInvalSTM(), repro.NewCGL(),
		repro.NewRTC(1), repro.NewRInval(repro.RInvalV3),
	}
	for _, alg := range algs {
		t.Run(alg.Name(), func(t *testing.T) {
			defer alg.Stop()
			c := repro.NewCell(0)
			var wg sync.WaitGroup
			for w := 0; w < 4; w++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for i := 0; i < 100; i++ {
						alg.Atomic(func(tx repro.MemTx) {
							tx.Write(c, tx.Read(c)+1)
						})
					}
				}()
			}
			wg.Wait()
			if c.Load() != 400 {
				t.Fatalf("counter = %d, want 400", c.Load())
			}
		})
	}
}

// TestFacadeIntegration runs a mixed transaction through both contexts.
func TestFacadeIntegration(t *testing.T) {
	for _, alg := range []repro.Integrated{repro.NewOTBNOrec(), repro.NewOTBTL2()} {
		t.Run(alg.Name(), func(t *testing.T) {
			defer alg.Stop()
			set := repro.NewSkipSet()
			n := repro.NewCell(0)
			for i := int64(0); i < 20; i++ {
				k := i
				alg.Atomic(func(ctx *repro.Ctx) {
					if set.Add(ctx.Sem(), k) {
						ctx.Write(n, ctx.Read(n)+1)
					}
				})
			}
			if set.Len() != 20 || n.Load() != 20 {
				t.Fatalf("set=%d n=%d, want 20,20", set.Len(), n.Load())
			}
		})
	}
}

// TestFacadeMap exercises the OTB map through the facade.
func TestFacadeMap(t *testing.T) {
	m := repro.NewMap()
	set := repro.NewListSet()
	repro.Atomic(func(tx *repro.Tx) {
		m.Put(tx, 1, 100)
		m.Put(tx, 2, 200)
		set.Add(tx, 1)
	})
	repro.Atomic(func(tx *repro.Tx) {
		if v, ok := m.Get(tx, 1); !ok || v != 100 {
			t.Errorf("Get(1) = %d,%v", v, ok)
		}
		// Move the mapping and the set membership atomically.
		if m.Delete(tx, 1) {
			m.Put(tx, 3, 100)
			set.Remove(tx, 1)
			set.Add(tx, 3)
		}
	})
	if m.Len() != 2 || set.Len() != 1 {
		t.Fatalf("map=%d set=%d, want 2,1", m.Len(), set.Len())
	}
}

// TestFacadeHybridHTM exercises the hybrid TM through the facade.
func TestFacadeHybridHTM(t *testing.T) {
	tm := repro.NewHybridHTM()
	defer tm.Stop()
	c := repro.NewCell(0)
	for i := 0; i < 50; i++ {
		tm.Atomic(func(tx repro.MemTx) { tx.Write(c, tx.Read(c)+1) })
	}
	if c.Load() != 50 {
		t.Fatalf("counter = %d", c.Load())
	}
	if tm.HWCommits() == 0 {
		t.Fatal("small uncontended transactions should commit in hardware")
	}
}

// TestFacadeAdaptive exercises the adaptive wrapper through the facade.
func TestFacadeAdaptive(t *testing.T) {
	s, err := repro.NewAdaptive(repro.NewNOrec(), repro.NewTL2())
	if err != nil {
		t.Fatal(err)
	}
	defer s.Stop()
	c := repro.NewCell(0)
	s.Atomic(func(tx repro.MemTx) { tx.Write(c, 1) })
	if err := s.Switch("TL2"); err != nil {
		t.Fatal(err)
	}
	s.Atomic(func(tx repro.MemTx) { tx.Write(c, tx.Read(c)+1) })
	if c.Load() != 2 {
		t.Fatalf("counter = %d, want 2", c.Load())
	}
}
