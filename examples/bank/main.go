// Bank: mixed memory and data-structure transactions (Chapter 4).
//
// Each transfer updates two account balances (transactional memory cells)
// and maintains a boosted set of "flagged" accounts whose balance dropped
// below a threshold — one atomic transaction spanning STM reads/writes and
// OTB set operations, executed by the OTB-NOrec integration context. This
// is the paper's Algorithm 7 pattern applied to a realistic workload.
//
//	go run ./examples/bank
package main

import (
	"fmt"
	"math/rand/v2"
	"sync"

	"repro"
)

const (
	accounts  = 64
	initial   = 1000
	threshold = 200
	transfers = 2000
	tellers   = 8
)

func main() {
	alg := repro.NewOTBNOrec()
	defer alg.Stop()

	balances := make([]*repro.Cell, accounts)
	for i := range balances {
		balances[i] = repro.NewCell(initial)
	}
	flagged := repro.NewListSet() // accounts under the low-balance threshold

	var wg sync.WaitGroup
	for t := 0; t < tellers; t++ {
		wg.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			rng := rand.New(rand.NewPCG(seed, 0xbadc0de))
			for i := 0; i < transfers; i++ {
				from := rng.IntN(accounts)
				to := rng.IntN(accounts - 1)
				if to >= from {
					to++
				}
				amount := uint64(rng.IntN(50) + 1)
				alg.Atomic(func(ctx *repro.Ctx) {
					fb := ctx.Read(balances[from])
					if fb < amount {
						return // insufficient funds; commit as a no-op
					}
					tb := ctx.Read(balances[to])
					ctx.Write(balances[from], fb-amount)
					ctx.Write(balances[to], tb+amount)
					// Maintain the flagged set in the same transaction.
					updateFlag(ctx, flagged, int64(from), fb-amount)
					updateFlag(ctx, flagged, int64(to), tb+amount)
				})
			}
		}(uint64(t + 1))
	}
	wg.Wait()

	var total uint64
	low := 0
	for i, c := range balances {
		v := c.Load()
		total += v
		if v < threshold {
			low++
		}
		_ = i
	}
	fmt.Printf("total money: %d (must be %d)\n", total, accounts*initial)
	fmt.Printf("accounts under threshold: %d, flagged set size: %d\n", low, flagged.Len())
	if total != accounts*initial {
		panic("money not conserved")
	}
	if low != flagged.Len() {
		panic("flagged set out of sync with balances")
	}
	fmt.Println("balances and flagged set stayed consistent under", tellers, "tellers")
}

// updateFlag keeps the flagged set in sync with a just-written balance.
func updateFlag(ctx *repro.Ctx, flagged *repro.ListSet, account int64, balance uint64) {
	if balance < threshold {
		flagged.Add(ctx.Sem(), account)
	} else {
		flagged.Remove(ctx.Sem(), account)
	}
}
