// RTC pipeline: server-committed transactions (Chapter 5).
//
// A pool of producers runs write transactions whose commit phases execute
// on RTC's dedicated commit server instead of in the producers themselves;
// a dependency-detector server commits independent transactions
// concurrently with the in-flight one. The program reports how many
// commits the detector absorbed — the effect Figure 5.11 measures.
//
//	go run ./examples/rtcpipeline
package main

import (
	"fmt"
	"sync"

	"repro"
)

const (
	producers = 8
	batches   = 500
	cellsPer  = 8
)

func main() {
	alg := repro.NewRTC(1) // one main server + one dependency detector
	defer alg.Stop()

	// Each producer owns a disjoint bank of cells, so most transactions are
	// independent and eligible for the secondary server.
	banks := make([][]*repro.Cell, producers)
	for p := range banks {
		banks[p] = make([]*repro.Cell, cellsPer)
		for i := range banks[p] {
			banks[p][i] = repro.NewCell(0)
		}
	}
	total := repro.NewCell(0) // shared: forces occasional dependencies

	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(mine []*repro.Cell, p int) {
			defer wg.Done()
			for b := 0; b < batches; b++ {
				alg.Atomic(func(tx repro.MemTx) {
					for _, c := range mine {
						tx.Write(c, tx.Read(c)+1)
					}
					if b%10 == 0 {
						tx.Write(total, tx.Read(total)+cellsPer)
					}
				})
			}
		}(banks[p], p)
	}
	wg.Wait()

	for p := range banks {
		for i, c := range banks[p] {
			if c.Load() != batches {
				panic(fmt.Sprintf("bank[%d][%d] = %d, want %d", p, i, c.Load(), batches))
			}
		}
	}
	fmt.Printf("committed %d transactions (%d aborted attempts)\n", alg.Commits(), alg.Aborts())
	fmt.Printf("dependency detector executed %d of them concurrently with the main server\n",
		alg.SecondaryCommits())
	fmt.Println("all banks consistent: every commit ran remotely, none was lost")
}
