// Scheduler: transactional job scheduling over boosted priority queues.
//
// Jobs carry a deadline (the priority). A dispatcher moves the most urgent
// job from the pending queue to the running set atomically; workers
// complete jobs by removing them from the running set and, for periodic
// jobs, re-enqueueing the next occurrence — again in one transaction. The
// skip-list priority queue keeps Min/RemoveMin optimistic and lock-free
// until commit, so dispatchers do not serialize against each other the way
// a pessimistically boosted (globally write-locked) queue would.
//
//	go run ./examples/scheduler
package main

import (
	"fmt"
	"sync"
	"sync/atomic"

	"repro"
)

const (
	initialJobs = 300
	dispatchers = 4
	workers     = 4
	period      = 1000003 // re-enqueue offset for periodic jobs
)

func main() {
	pending := repro.NewSkipPQ() // deadline-ordered jobs
	running := repro.NewSkipSet()
	for i := int64(1); i <= initialJobs; i++ {
		deadline := i * 17
		repro.Atomic(func(tx *repro.Tx) { pending.Add(tx, deadline) })
	}

	var dispatched, completed atomic.Int64
	work := make(chan int64, initialJobs)

	var wg sync.WaitGroup
	// Dispatchers: claim the most urgent pending job.
	for d := 0; d < dispatchers; d++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				var job int64
				var ok bool
				repro.Atomic(func(tx *repro.Tx) {
					job, ok = pending.RemoveMin(tx)
					if ok {
						running.Add(tx, job)
					}
				})
				if !ok {
					return // queue drained
				}
				dispatched.Add(1)
				work <- job
			}
		}()
	}
	// Workers: complete jobs; every third job is periodic and re-enqueues
	// its next occurrence in the same transaction.
	var wwg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wwg.Add(1)
		go func() {
			defer wwg.Done()
			for job := range work {
				repro.Atomic(func(tx *repro.Tx) {
					if !running.Remove(tx, job) {
						panic("job not in running set")
					}
					if job%3 == 0 && job < period {
						pending.Add(tx, job+period)
					}
				})
				completed.Add(1)
			}
		}()
	}
	wg.Wait()

	// Drain any periodic re-enqueues that arrived after dispatchers left.
	for {
		var job int64
		var ok bool
		repro.Atomic(func(tx *repro.Tx) { job, ok = pending.RemoveMin(tx) })
		if !ok {
			break
		}
		repro.Atomic(func(tx *repro.Tx) { running.Add(tx, job) })
		dispatched.Add(1)
		work <- job
	}
	close(work)
	wwg.Wait()

	fmt.Printf("dispatched %d jobs, completed %d, pending now %d, running now %d\n",
		dispatched.Load(), completed.Load(), pending.Len(), running.Len())
	if dispatched.Load() != completed.Load() || running.Len() != 0 {
		panic("scheduler lost a job")
	}
	fmt.Println("every dispatch and completion was atomic across queue and set")
}
