// Quickstart: composable transactions over boosted data structures.
//
// The paper's motivating problem is that highly concurrent data structures
// (lazy lists, skip lists) do not compose: two operations cannot be made
// atomic together without wrapping the whole structure in a lock. This
// program shows OTB's answer — operations on any number of boosted
// structures compose into one atomic transaction with optimistic
// concurrency control.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"sync"

	"repro"
)

func main() {
	free := repro.NewListSet() // pool of free ids
	used := repro.NewSkipSet() // ids currently leased
	for i := int64(1); i <= 100; i++ {
		id := i
		repro.Atomic(func(tx *repro.Tx) { free.Add(tx, id) })
	}

	// 16 goroutines lease and release ids; each lease moves an id from
	// free to used atomically, so an id can never be in both sets (or
	// neither) at any commit point.
	var wg sync.WaitGroup
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for round := 0; round < 200; round++ {
				id := int64(g*7+round)%100 + 1
				repro.Atomic(func(tx *repro.Tx) {
					if free.Remove(tx, id) {
						used.Add(tx, id)
					} else if used.Remove(tx, id) {
						free.Add(tx, id)
					}
				})
			}
		}(g)
	}
	wg.Wait()

	fmt.Printf("free: %d ids, used: %d ids, total: %d (must be 100)\n",
		free.Len(), used.Len(), free.Len()+used.Len())
	if free.Len()+used.Len() != 100 {
		panic("invariant broken: ids lost or duplicated")
	}
	fmt.Println("every lease/release was atomic across both structures")
}
