// Hybrid: emulated best-effort HTM with software fallback, behind the
// adaptive framework (the paper's Chapter 7 roadmap in one program).
//
// Small transactions commit in the emulated hardware path; transactions
// whose footprint exceeds the hardware capacity fall back to software. The
// adaptive layer then hot-swaps the whole workload onto RTC with a
// stop-the-world switch, mid-run, without losing a single update.
//
//	go run ./examples/hybrid
package main

import (
	"fmt"
	"runtime"
	"sync"

	"repro"
)

const (
	workers    = 6
	perWorker  = 2000
	smallCells = 4
	bigCells   = 256 // exceeds the hardware read capacity
)

func main() {
	hybrid := repro.NewHybridHTM()
	adaptive, err := repro.NewAdaptive(hybrid, repro.NewRTC(1))
	if err != nil {
		panic(err)
	}
	defer adaptive.Stop()

	small := make([]*repro.Cell, smallCells)
	for i := range small {
		small[i] = repro.NewCell(0)
	}
	big := make([]*repro.Cell, bigCells)
	for i := range big {
		big[i] = repro.NewCell(1)
	}

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				if i%10 == 0 {
					// A big transaction: reads the whole array (capacity
					// abort in hardware, commits in software).
					adaptive.Atomic(func(tx repro.MemTx) {
						var sum uint64
						for _, c := range big {
							sum += tx.Read(c)
						}
						tx.Write(small[0], tx.Read(small[0])+1)
					})
				} else {
					// A small transaction: hardware-sized.
					c := small[(w+i)%smallCells]
					adaptive.Atomic(func(tx repro.MemTx) {
						tx.Write(c, tx.Read(c)+1)
					})
				}
			}
		}(w)
	}
	// Let the hybrid path absorb a good share of the run, then switch the
	// whole system onto RTC (stop-the-world) while workers keep going.
	for hybrid.HWCommits()+hybrid.SWCommits() < workers*perWorker/2 {
		runtime.Gosched()
	}
	if err := adaptive.Switch("RTC"); err != nil {
		panic(err)
	}
	wg.Wait()

	var total uint64
	for _, c := range small {
		total += c.Load()
	}
	fmt.Printf("total updates: %d (must be %d)\n", total, workers*perWorker)
	if total != workers*perWorker {
		panic("updates lost across paths or the switch")
	}
	fmt.Printf("hybrid path before the switch: %d hardware commits, %d software fallbacks (%d capacity aborts)\n",
		hybrid.HWCommits(), hybrid.SWCommits(), hybrid.HWAborts(1))
	fmt.Printf("adaptive layer: active=%s after %d switch(es)\n",
		adaptive.Active(), adaptive.Switches())
}
